// Package sentiment implements the paper's third use case: Sentiment
// Analyses for News Articles (Section 4.3), the stateful workflow used to
// evaluate hybrid_redis against multi.
//
// Topology (Figure 7): articles flow through two parallel scoring pathways
// — an AFINN lexicon scorer, and a tokenizer feeding an SWN3 scorer — each
// followed by a findState PE; both pathways converge on the stateful
// happyState PE (4 instances, grouped by 'state'), whose per-state totals
// feed the stateful top3Happiest PE under the global grouping.
//
// Instance counts follow the paper's experiment setup: happyState ×4 and
// top3Happiest ×2 (stateful, pinned), the two findState PEs ×2 each, the
// scorers and reader ×1 — which makes the static multi mapping demand its
// paper-quoted minimum of 14 processes.
//
// Config.ManagedState selects an alternative implementation of the two
// stateful PEs on the managed state subsystem (package state): identical
// results, but the state is externalized, so the workflow additionally runs
// under the plain dynamic mappings and supports checkpoint/resume.
package sentiment

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/state"
	"repro/internal/synth"
)

// Config parameterizes the workflow.
type Config struct {
	// Articles is the stream length; 0 means 120.
	Articles int
	// Seed drives the synthetic corpus.
	Seed int64
	// HappyInstances is the happyState instance count; 0 means 4.
	HappyInstances int
	// TopInstances is the top3Happiest instance count; 0 means 2.
	TopInstances int
	// ManagedState switches the two stateful PEs from field state (the
	// paper-faithful model: state pinned to instances, dynamic mappings
	// reject the workflow) to the managed state subsystem (package state):
	// happyState keeps keyed per-state totals and top3Happiest a singleton
	// ranking in engine-managed stores, which lets the workflow run under
	// every mapping — including dyn_multi/dyn_redis — and be checkpointed
	// and resumed.
	ManagedState bool
	// OnTop3, when non-nil, receives the final top-3 ranking from each
	// top3Happiest instance that holds data (with global grouping, exactly
	// one; with ManagedState, from the single engine-invoked Final). It must
	// be safe for concurrent use.
	OnTop3 func([]StateScore)
}

func (c Config) withDefaults() Config {
	if c.Articles <= 0 {
		c.Articles = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HappyInstances <= 0 {
		c.HappyInstances = 4
	}
	if c.TopInstances <= 0 {
		c.TopInstances = 2
	}
	return c
}

// ScoredPayload is an article score tagged with its origin pathway.
type ScoredPayload struct {
	State  string
	Score  float64
	Source string // "afinn" or "swn3"
}

// TokensPayload carries tokenized article text between tokenizeWD and
// sentimentSWN3.
type TokensPayload struct {
	State  string
	Tokens []string
}

// StateScore is a per-state aggregate.
type StateScore struct {
	State string
	Score float64
}

func init() {
	codec.Register(synth.Article{})
	codec.Register(ScoredPayload{})
	codec.Register(TokensPayload{})
	codec.Register(StateScore{})
	codec.Register([]StateScore(nil))
}

// Service costs (scaled): lexicon scoring is the bulk of the work; SWN3 is
// costlier than AFINN (two lookups per token); state extraction is cheap.
// The absolute level is calibrated so that PE compute dominates transport
// overhead, as in the original NLTK-based workflow — that is what makes
// multi's single-instance scorer stages the bottleneck the paper's
// hybrid_redis overtakes.
const (
	readCost     = 600 * time.Microsecond
	afinnCost    = 6 * time.Millisecond
	tokenizeCost = 4 * time.Millisecond
	swn3Cost     = 8 * time.Millisecond
	findCost     = 2 * time.Millisecond
	happyCost    = 1200 * time.Microsecond
	topCost      = 400 * time.Microsecond
)

// MinMultiProcesses is the minimum process budget the static multi mapping
// needs for this workflow with the default instance counts (the paper: "multi
// demands a minimum of 14 processes due to its one-to-one
// instance-to-process mapping").
const MinMultiProcesses = 1 + 1 + 1 + 1 + 2 + 2 + 4 + 2

// New builds the abstract workflow.
func New(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	g := graph.New("sentiment")

	g.Add(func() core.PE {
		return core.NewSource("readArticles", func(ctx *core.Context) error {
			for _, art := range synth.Articles(cfg.Seed, cfg.Articles) {
				ctx.Work(readCost)
				if err := ctx.EmitDefault(art); err != nil {
					return err
				}
			}
			return nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("sentimentAFINN", func(ctx *core.Context, v any) (any, error) {
			art, ok := v.(synth.Article)
			if !ok {
				return nil, fmt.Errorf("sentimentAFINN: unexpected payload %T", v)
			}
			ctx.Work(afinnCost)
			return ScoredPayload{State: art.State, Score: float64(synth.ScoreAFINN(art.Body)), Source: "afinn"}, nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("tokenizeWD", func(ctx *core.Context, v any) (any, error) {
			art, ok := v.(synth.Article)
			if !ok {
				return nil, fmt.Errorf("tokenizeWD: unexpected payload %T", v)
			}
			ctx.Work(tokenizeCost)
			return TokensPayload{State: art.State, Tokens: synth.Tokenize(art.Body)}, nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("sentimentSWN3", func(ctx *core.Context, v any) (any, error) {
			tk, ok := v.(TokensPayload)
			if !ok {
				return nil, fmt.Errorf("sentimentSWN3: unexpected payload %T", v)
			}
			ctx.Work(swn3Cost)
			return ScoredPayload{State: tk.State, Score: synth.ScoreSWN3(tk.Tokens), Source: "swn3"}, nil
		})
	})

	findState := func(name string) func() core.PE {
		return func() core.PE {
			return core.NewMap(name, func(ctx *core.Context, v any) (any, error) {
				sc, ok := v.(ScoredPayload)
				if !ok {
					return nil, fmt.Errorf("%s: unexpected payload %T", name, v)
				}
				ctx.Work(findCost)
				// State identification: validate against the known state
				// list (articles with unrecognized locations are dropped,
				// as in the original workflow).
				for _, s := range synth.USStates {
					if s == sc.State {
						return sc, nil
					}
				}
				return nil, nil
			})
		}
	}
	g.Add(findState("findStateAFINN")).SetInstances(2)
	g.Add(findState("findStateSWN3")).SetInstances(2)

	if cfg.ManagedState {
		g.Add(newManagedHappyState).SetInstances(cfg.HappyInstances).SetKeyedState()
		g.Add(func() core.PE { return newManagedTop3(cfg.OnTop3) }).SetInstances(cfg.TopInstances).SetSingletonState()
	} else {
		g.Add(newHappyState).SetInstances(cfg.HappyInstances).SetStateful(true)
		g.Add(func() core.PE { return newTop3(cfg.OnTop3) }).SetInstances(cfg.TopInstances).SetStateful(true)
	}

	g.Pipe("readArticles", "sentimentAFINN")
	g.Pipe("readArticles", "tokenizeWD")
	g.Pipe("tokenizeWD", "sentimentSWN3")
	g.Pipe("sentimentAFINN", "findStateAFINN")
	g.Pipe("sentimentSWN3", "findStateSWN3")
	byState := graph.GroupByKey(func(v any) string { return v.(ScoredPayload).State })
	g.Connect("findStateAFINN", core.PortOut, "happyState", core.PortIn).SetGrouping(byState)
	g.Connect("findStateSWN3", core.PortOut, "happyState", core.PortIn).SetGrouping(byState)
	g.Pipe("happyState", "top3Happiest").SetGrouping(graph.GlobalGrouping())
	return g
}

// happyState aggregates sentiment per state; group-by routing guarantees
// each state is owned by exactly one instance, so the per-instance maps are
// disjoint. At Final each instance flushes its totals.
//
// Totals accumulate in integer hundredths so the aggregate is independent
// of arrival order — parallel mappings interleave the two scoring pathways
// nondeterministically, and float addition is not associative.
type happyState struct {
	core.Base
	totals map[string]int64 // score hundredths
}

func newHappyState() core.PE {
	return &happyState{Base: core.NewBase("happyState", core.In(), core.Out()), totals: map[string]int64{}}
}

// Process implements core.PE.
func (h *happyState) Process(ctx *core.Context, port string, v any) error {
	sc, ok := v.(ScoredPayload)
	if !ok {
		return fmt.Errorf("happyState: unexpected payload %T", v)
	}
	ctx.Work(happyCost)
	h.totals[sc.State] += int64(math.Round(sc.Score * 100))
	return nil
}

// Final implements core.Finalizer.
func (h *happyState) Final(ctx *core.Context) error {
	states := make([]string, 0, len(h.totals))
	for s := range h.totals {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		if err := ctx.EmitDefault(StateScore{State: s, Score: float64(h.totals[s]) / 100}); err != nil {
			return err
		}
	}
	return nil
}

// managedHappyState is happyState on the managed state subsystem: per-state
// totals live in a keyed store (key = state, value = score hundredths via
// AddInt, atomic under every mapping), not in PE fields. The engine runs
// Final once per run; it sweeps the whole namespace, so the flush is correct
// regardless of how many instances or dynamic workers fed the store.
type managedHappyState struct {
	core.Base
}

func newManagedHappyState() core.PE {
	return &managedHappyState{Base: core.NewBase("happyState", core.In(), core.Out())}
}

// Process implements core.PE.
func (h *managedHappyState) Process(ctx *core.Context, port string, v any) error {
	sc, ok := v.(ScoredPayload)
	if !ok {
		return fmt.Errorf("happyState: unexpected payload %T", v)
	}
	ctx.Work(happyCost)
	_, err := ctx.State().AddInt(sc.State, int64(math.Round(sc.Score*100)))
	return err
}

// Final implements core.Finalizer.
func (h *managedHappyState) Final(ctx *core.Context) error {
	entries, err := state.SortedEntries(ctx.State())
	if err != nil {
		return err
	}
	for _, e := range entries {
		hundredths, err := strconv.ParseInt(e.Value, 10, 64)
		if err != nil {
			return fmt.Errorf("happyState: corrupt total for %s: %w", e.Key, err)
		}
		if err := ctx.EmitDefault(StateScore{State: e.Key, Score: float64(hundredths) / 100}); err != nil {
			return err
		}
	}
	return nil
}

// managedTop3 is top3Happiest on managed singleton state: one store entry
// per state score received, ranked in the single engine-invoked Final.
type managedTop3 struct {
	core.Base
	onTop func([]StateScore)
}

func newManagedTop3(onTop func([]StateScore)) core.PE {
	return &managedTop3{Base: core.NewBase("top3Happiest", core.In(), core.Out()), onTop: onTop}
}

// Process implements core.PE.
func (t *managedTop3) Process(ctx *core.Context, port string, v any) error {
	sc, ok := v.(StateScore)
	if !ok {
		return fmt.Errorf("top3Happiest: unexpected payload %T", v)
	}
	ctx.Work(topCost)
	return ctx.State().Put(sc.State, strconv.FormatFloat(sc.Score, 'g', -1, 64))
}

// Final implements core.Finalizer.
func (t *managedTop3) Final(ctx *core.Context) error {
	entries, err := state.SortedEntries(ctx.State())
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	scores := make([]StateScore, 0, len(entries))
	for _, e := range entries {
		f, err := strconv.ParseFloat(e.Value, 64)
		if err != nil {
			return fmt.Errorf("top3Happiest: corrupt score for %s: %w", e.Key, err)
		}
		scores = append(scores, StateScore{State: e.Key, Score: f})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].State < scores[j].State
	})
	if len(scores) > 3 {
		scores = scores[:3]
	}
	if t.onTop != nil {
		t.onTop(scores)
	}
	return ctx.EmitDefault(scores)
}

// top3 keeps every state total and emits the top three at Final.
type top3 struct {
	core.Base
	scores []StateScore
	onTop  func([]StateScore)
}

func newTop3(onTop func([]StateScore)) core.PE {
	return &top3{Base: core.NewBase("top3Happiest", core.In(), core.Out()), onTop: onTop}
}

// Process implements core.PE.
func (t *top3) Process(ctx *core.Context, port string, v any) error {
	sc, ok := v.(StateScore)
	if !ok {
		return fmt.Errorf("top3Happiest: unexpected payload %T", v)
	}
	ctx.Work(topCost)
	t.scores = append(t.scores, sc)
	return nil
}

// Final implements core.Finalizer.
func (t *top3) Final(ctx *core.Context) error {
	if len(t.scores) == 0 {
		return nil // instances outside the global route hold no data
	}
	sort.Slice(t.scores, func(i, j int) bool {
		if t.scores[i].Score != t.scores[j].Score {
			return t.scores[i].Score > t.scores[j].Score
		}
		return t.scores[i].State < t.scores[j].State
	})
	top := t.scores
	if len(top) > 3 {
		top = top[:3]
	}
	out := append([]StateScore(nil), top...)
	if t.onTop != nil {
		t.onTop(out)
	}
	return ctx.EmitDefault(out)
}
