package seismic

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Stations != 50 || cfg.Samples != 3000 || cfg.Seed != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestGraphShape(t *testing.T) {
	g := New(Config{Stations: 3, Samples: 100})
	if len(g.Nodes()) != 9 {
		t.Fatalf("phase 1 has %d PEs, want 9", len(g.Nodes()))
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0].Name != "writeData" {
		t.Errorf("sink: %+v", g.Sinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strictly linear: every node except source/sink has exactly one in and
	// one out edge.
	for _, n := range g.Nodes() {
		in, out := len(g.InEdges(n.Name)), len(g.OutEdges(n.Name))
		switch n.Name {
		case "readStations":
			if in != 0 || out != 1 {
				t.Errorf("%s: %d in %d out", n.Name, in, out)
			}
		case "writeData":
			if in != 1 || out != 0 {
				t.Errorf("%s: %d in %d out", n.Name, in, out)
			}
		default:
			if in != 1 || out != 1 {
				t.Errorf("%s: %d in %d out", n.Name, in, out)
			}
		}
	}
}

func TestTransformRejectsWrongPayload(t *testing.T) {
	g := New(Config{Stations: 1, Samples: 50})
	ctx := core.NewContext("t", 0, nil, nil, func(string, any) error { return nil })
	for _, name := range []string{"decimate", "detrend", "filterBand", "writeData"} {
		pe := g.Node(name).Factory()
		if err := pe.Process(ctx, core.PortIn, 42); err == nil {
			t.Errorf("%s accepted a bogus payload", name)
		}
	}
}

func TestTransformsPreserveStationAndShrinkOnlyAtDecimate(t *testing.T) {
	g := New(Config{Stations: 1, Samples: 200})
	var out any
	ctx := core.NewContext("t", 0, nil, synth.NewRand(1), func(port string, v any) error {
		out = v
		return nil
	})
	tr := TracePayload{Station: "ST000", Rate: 100, Samples: make([]float64, 200)}
	for i := range tr.Samples {
		tr.Samples[i] = math.Sin(float64(i) / 5)
	}
	dec := g.Node("decimate").Factory()
	if err := dec.Process(ctx, core.PortIn, tr); err != nil {
		t.Fatal(err)
	}
	half := out.(TracePayload)
	if half.Station != "ST000" || len(half.Samples) != 100 {
		t.Errorf("decimate: %s %d samples", half.Station, len(half.Samples))
	}
	dm := g.Node("demean").Factory()
	if err := dm.Process(ctx, core.PortIn, half); err != nil {
		t.Fatal(err)
	}
	demeaned := out.(TracePayload)
	if len(demeaned.Samples) != 100 {
		t.Errorf("demean changed length: %d", len(demeaned.Samples))
	}
	if m := synth.Mean(demeaned.Samples); math.Abs(m) > 1e-9 {
		t.Errorf("mean after demean: %v", m)
	}
}

func TestEncodeTraceFormat(t *testing.T) {
	data := encodeTrace(TracePayload{Station: "ST001", Rate: 100, Samples: []float64{1.25, -0.5}})
	s := string(data)
	if !strings.HasPrefix(s, "# station=ST001 rate=100 n=2\n") {
		t.Errorf("header: %q", s)
	}
	if !strings.Contains(s, "1.25000\n") || !strings.Contains(s, "-0.50000\n") {
		t.Errorf("samples: %q", s)
	}
}

func TestPhase2GraphShape(t *testing.T) {
	g := NewPhase2(Config{Stations: 10, Samples: 100}, 3, nil)
	if len(g.Nodes()) != 3 {
		t.Fatalf("phase 2 has %d PEs", len(g.Nodes()))
	}
	if !g.HasStateful() || !g.HasNonShuffleGrouping() {
		t.Error("phase 2 must be stateful and grouped (that is its point)")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPairerEmitsPerBandPairs(t *testing.T) {
	p := newPairer().(*pairer)
	var emitted []PairPayload
	ctx := core.NewContext("xcorrPair", 0, nil, synth.NewRand(1), func(port string, v any) error {
		emitted = append(emitted, v.(PairPayload))
		return nil
	})
	mk := func(st string) TracePayload {
		tr := synth.MakeTrace(st, 100, 1)
		return TracePayload{Station: st, Rate: 100, Samples: tr.Samples}
	}
	// Two stations in band ST00x, one in band ST01x.
	for _, st := range []string{"ST000", "ST010", "ST001"} {
		if err := p.Process(ctx, core.PortIn, mk(st)); err != nil {
			t.Fatal(err)
		}
	}
	if len(emitted) != 1 {
		t.Fatalf("pairs: %+v", emitted)
	}
	if emitted[0].A != "ST000" || emitted[0].B != "ST001" {
		t.Errorf("pair: %+v", emitted[0])
	}
}

func TestTopKOrdersAndLimits(t *testing.T) {
	var got []PairPayload
	tk := newTopK(2, func(pairs []PairPayload) { got = pairs }).(*topK)
	ctx := core.NewContext("topPairs", 0, nil, nil, func(port string, v any) error { return nil })
	for _, peak := range []float64{0.1, 0.9, 0.5} {
		if err := tk.Process(ctx, core.PortIn, PairPayload{A: "a", B: "b", Peak: peak}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tk.Final(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Peak != 0.9 || got[1].Peak != 0.5 {
		t.Errorf("topK: %+v", got)
	}
}
