// Package seismic implements the paper's second use case: phase 1 of the
// Seismic Cross-Correlation workflow (Section 4.2) — nine interconnected
// stateless PEs with a deliberately imbalanced cost profile ("the
// intermediate PEs only do calculations in main memory, but the last PE
// writes data into the disk").
//
//	readStations → fetchWaveform → decimate → detrend → demean →
//	  filterBand → whiten → normalize → writeData
//
// The signal transforms are real (package synth); the per-PE service costs
// are scaled from the original profile, with fetch and the disk writer
// heaviest. Phase 2 (the cross-correlation of station pairs under a
// grouping) is provided by NewPhase2 for the stateful examples.
package seismic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/synth"
)

// Config parameterizes the workflow.
type Config struct {
	// Stations is the number of stations; 0 means 50 (the paper's input).
	Stations int
	// Samples is the per-trace sample count; 0 means 3000.
	Samples int
	// OutDir receives the written traces; empty means discard (the write
	// cost is still modeled).
	OutDir string
	// Seed drives the synthetic waveforms.
	Seed int64
	// OnWrite, when non-nil, observes every written trace (station, bytes).
	// It must be safe for concurrent use.
	OnWrite func(station string, size int)
}

func (c Config) withDefaults() Config {
	if c.Stations <= 0 {
		c.Stations = 50
	}
	if c.Samples <= 0 {
		c.Samples = 3000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TracePayload is the waveform flowing between the processing PEs.
type TracePayload struct {
	Station string
	Rate    float64
	Samples []float64
}

func init() {
	codec.Register(TracePayload{})
	codec.Register(PairPayload{})
}

// Per-PE service costs: the imbalance is the point (reader and transforms
// cheap-to-moderate, fetch and disk write heavy).
const (
	readCost      = 100 * time.Microsecond
	fetchCost     = 2 * time.Millisecond
	decimateCost  = 800 * time.Microsecond
	detrendCost   = 1 * time.Millisecond
	demeanCost    = 600 * time.Microsecond
	filterCost    = 2500 * time.Microsecond
	whitenCost    = 1800 * time.Microsecond
	normalizeCost = 500 * time.Microsecond
	writeCost     = 3 * time.Millisecond
)

// transform builds a map PE over TracePayload.
func transform(name string, cost time.Duration, fn func(samples []float64) []float64) func() core.PE {
	return func() core.PE {
		return core.NewMap(name, func(ctx *core.Context, v any) (any, error) {
			tr, ok := v.(TracePayload)
			if !ok {
				return nil, fmt.Errorf("%s: unexpected payload %T", name, v)
			}
			ctx.Work(cost)
			out := fn(append([]float64(nil), tr.Samples...))
			return TracePayload{Station: tr.Station, Rate: tr.Rate, Samples: out}, nil
		})
	}
}

// New builds the 9-PE phase-1 abstract workflow.
func New(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	g := graph.New("seismic")

	g.Add(func() core.PE {
		return core.NewSource("readStations", func(ctx *core.Context) error {
			for _, st := range synth.Stations(cfg.Stations) {
				ctx.Work(readCost)
				if err := ctx.EmitDefault(st); err != nil {
					return err
				}
			}
			return nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("fetchWaveform", func(ctx *core.Context, v any) (any, error) {
			station, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("fetchWaveform: unexpected payload %T", v)
			}
			ctx.Work(fetchCost)
			tr := synth.MakeTrace(station, cfg.Samples, cfg.Seed^int64(stationHash(station)))
			return TracePayload{Station: tr.Station, Rate: tr.SampleRate, Samples: tr.Samples}, nil
		})
	})

	g.Add(transform("decimate", decimateCost, func(s []float64) []float64 { return synth.Decimate(s, 2) }))
	g.Add(transform("detrend", detrendCost, synth.Detrend))
	g.Add(transform("demean", demeanCost, synth.Demean))
	g.Add(transform("filterBand", filterCost, func(s []float64) []float64 { return synth.LowPassFIR(s, 16) }))
	g.Add(transform("whiten", whitenCost, func(s []float64) []float64 { return synth.Whiten(s, 64) }))
	g.Add(transform("normalize", normalizeCost, synth.OneBitNormalize))

	g.Add(func() core.PE {
		return core.NewSink("writeData", func(ctx *core.Context, v any) error {
			tr, ok := v.(TracePayload)
			if !ok {
				return fmt.Errorf("writeData: unexpected payload %T", v)
			}
			ctx.Work(writeCost)
			data := encodeTrace(tr)
			if cfg.OutDir != "" {
				path := filepath.Join(cfg.OutDir, tr.Station+".trace")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("writeData: %w", err)
				}
			}
			if cfg.OnWrite != nil {
				cfg.OnWrite(tr.Station, len(data))
			}
			return nil
		})
	})

	chain := []string{
		"readStations", "fetchWaveform", "decimate", "detrend", "demean",
		"filterBand", "whiten", "normalize", "writeData",
	}
	for i := 0; i+1 < len(chain); i++ {
		g.Pipe(chain[i], chain[i+1])
	}
	return g
}

// encodeTrace renders a trace as a simple text format for the disk writer.
func encodeTrace(tr TracePayload) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# station=%s rate=%g n=%d\n", tr.Station, tr.Rate, len(tr.Samples))
	for _, s := range tr.Samples {
		fmt.Fprintf(&b, "%.5f\n", s)
	}
	return []byte(b.String())
}

func stationHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// --- Phase 2: cross-correlation (stateful) -----------------------------------

// PairPayload is a cross-correlation result for a station pair.
type PairPayload struct {
	A, B string
	Peak float64
}

// NewPhase2 builds the second phase as a stateful workflow: traces are
// grouped onto a stateful pairing PE that cross-correlates consecutive
// traces per group and emits peak correlations; a global top-K PE ranks
// them. The paper keeps phase 2 out of its dynamic experiments precisely
// because of this grouping; it is included here for the hybrid mapping and
// the extended examples.
func NewPhase2(cfg Config, k int, onTop func([]PairPayload)) *graph.Graph {
	cfg = cfg.withDefaults()
	if k <= 0 {
		k = 3
	}
	g := graph.New("seismic-xcorr")

	g.Add(func() core.PE {
		return core.NewSource("readTraces", func(ctx *core.Context) error {
			for _, st := range synth.Stations(cfg.Stations) {
				ctx.Work(readCost)
				tr := synth.MakeTrace(st, cfg.Samples, cfg.Seed^int64(stationHash(st)))
				norm := synth.OneBitNormalize(synth.Demean(tr.Samples))
				if err := ctx.EmitDefault(TracePayload{Station: st, Rate: tr.SampleRate, Samples: norm}); err != nil {
					return err
				}
			}
			return nil
		})
	})

	g.Add(newPairer).SetInstances(4).SetStateful(true)
	g.Add(func() core.PE { return newTopK(k, onTop) }).SetInstances(1).SetStateful(true)

	g.Pipe("readTraces", "xcorrPair").SetGrouping(graph.GroupByKey(func(v any) string {
		// Group stations into bands so pairs form within a band.
		tr := v.(TracePayload)
		return tr.Station[:len(tr.Station)-1]
	}))
	g.Pipe("xcorrPair", "topPairs").SetGrouping(graph.GlobalGrouping())
	return g
}

// pairer cross-correlates each incoming trace against the previous one in
// its group (stateful: it must see every trace of its keys).
type pairer struct {
	core.Base
	prev map[string]TracePayload
}

func newPairer() core.PE {
	return &pairer{Base: core.NewBase("xcorrPair", core.In(), core.Out()), prev: map[string]TracePayload{}}
}

// Process implements core.PE.
func (p *pairer) Process(ctx *core.Context, port string, v any) error {
	tr, ok := v.(TracePayload)
	if !ok {
		return fmt.Errorf("xcorrPair: unexpected payload %T", v)
	}
	ctx.Work(filterCost) // correlation cost on par with filtering
	band := tr.Station[:len(tr.Station)-1]
	if prev, ok := p.prev[band]; ok {
		cc := synth.CrossCorrelate(prev.Samples, tr.Samples, 16)
		peak := 0.0
		for _, c := range cc {
			if c > peak {
				peak = c
			}
		}
		if err := ctx.EmitDefault(PairPayload{A: prev.Station, B: tr.Station, Peak: peak}); err != nil {
			return err
		}
	}
	p.prev[band] = tr
	return nil
}

// topK keeps the k best-correlated pairs and flushes them at Final.
type topK struct {
	core.Base
	k     int
	pairs []PairPayload
	onTop func([]PairPayload)
}

func newTopK(k int, onTop func([]PairPayload)) core.PE {
	return &topK{Base: core.NewBase("topPairs", core.In(), core.Out()), k: k, onTop: onTop}
}

// Process implements core.PE.
func (t *topK) Process(ctx *core.Context, port string, v any) error {
	p, ok := v.(PairPayload)
	if !ok {
		return fmt.Errorf("topPairs: unexpected payload %T", v)
	}
	t.pairs = append(t.pairs, p)
	return nil
}

// Final implements core.Finalizer.
func (t *topK) Final(ctx *core.Context) error {
	sort.Slice(t.pairs, func(i, j int) bool { return t.pairs[i].Peak > t.pairs[j].Peak })
	top := t.pairs
	if len(top) > t.k {
		top = top[:t.k]
	}
	if t.onTop != nil {
		t.onTop(append([]PairPayload(nil), top...))
	}
	for _, p := range top {
		if err := ctx.EmitDefault(p); err != nil {
			return err
		}
	}
	return nil
}
