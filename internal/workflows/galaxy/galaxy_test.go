package galaxy

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Galaxies != BaseGalaxies || cfg.HeavyMax != 20*time.Millisecond || cfg.VORows != 3 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestScaledHelper(t *testing.T) {
	cfg := Scaled(10, false)
	if cfg.Galaxies != 1000 || cfg.Heavy {
		t.Errorf("Scaled(10,false) = %+v", cfg)
	}
}

func TestGraphShape(t *testing.T) {
	g := New(Config{Galaxies: 5})
	if len(g.Nodes()) != 4 {
		t.Fatalf("galaxy has %d PEs, want 4 per the paper", len(g.Nodes()))
	}
	want := []string{"readRaDec", "getVOTable", "filterColumns", "internalExtinction"}
	for i, n := range g.Nodes() {
		if n.Name != want[i] {
			t.Errorf("node %d = %s want %s", i, n.Name, want[i])
		}
	}
	if g.HasStateful() || g.HasNonShuffleGrouping() {
		t.Error("galaxy must be fully stateless with shuffle groupings")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// drive runs the graph synchronously through bare PE instances (no engine),
// verifying the PE contract directly.
func drive(t *testing.T, cfg Config) int {
	t.Helper()
	g := New(cfg)
	pes := map[string]core.PE{}
	for _, n := range g.Nodes() {
		pes[n.Name] = n.Factory()
	}
	var results int
	var route func(from, port string, v any) error
	mkCtx := func(name string) *core.Context {
		return core.NewContext(name, 0, nil, synth.NewRand(1), func(port string, v any) error {
			return route(name, port, v)
		})
	}
	route = func(from, port string, v any) error {
		for _, e := range g.OutEdges(from) {
			if err := pes[e.To].Process(mkCtx(e.To), e.ToPort, v); err != nil {
				return err
			}
		}
		if from == "internalExtinction" {
			results++
		}
		return nil
	}
	src := pes["readRaDec"].(core.Source)
	if err := src.Generate(mkCtx("readRaDec")); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestPipelineProducesOneResultPerGalaxy(t *testing.T) {
	if got := drive(t, Config{Galaxies: 7, VORows: 2}); got != 7 {
		t.Errorf("results=%d want 7", got)
	}
}

func TestOnResultCallback(t *testing.T) {
	var mu sync.Mutex
	got := map[string]float64{}
	cfg := Config{Galaxies: 4, OnResult: func(name string, ext float64) {
		mu.Lock()
		got[name] = ext
		mu.Unlock()
	}}
	drive(t, cfg)
	if len(got) != 4 {
		t.Fatalf("callback fired %d times", len(got))
	}
	for name, ext := range got {
		if ext < 0 {
			t.Errorf("%s: negative extinction %v", name, ext)
		}
	}
}

func TestPEsRejectWrongPayloads(t *testing.T) {
	g := New(Config{Galaxies: 1})
	ctx := core.NewContext("t", 0, nil, nil, func(string, any) error { return nil })
	for _, name := range []string{"getVOTable", "filterColumns", "internalExtinction"} {
		pe := g.Node(name).Factory()
		if err := pe.Process(ctx, core.PortIn, "wrong type"); err == nil {
			t.Errorf("%s accepted a bogus payload", name)
		}
	}
}

func TestHeavyConfigAddsWork(t *testing.T) {
	start := time.Now()
	drive(t, Config{Galaxies: 3, Heavy: true, HeavyMax: 10 * time.Millisecond})
	heavy := time.Since(start)
	start = time.Now()
	drive(t, Config{Galaxies: 3})
	std := time.Since(start)
	if heavy <= std {
		t.Errorf("heavy %v not slower than standard %v", heavy, std)
	}
}
