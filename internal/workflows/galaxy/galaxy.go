// Package galaxy implements the paper's first use case: the Internal
// Extinction of Galaxies workflow (Section 4.1) — four stateless PEs that
// read galaxy coordinates, fetch VO tables, filter columns, and compute the
// internal extinction metric.
//
//	readRaDec → getVOTable → filterColumns → internalExtinction
//
// The paper scales the workload two ways, both reproduced here: the stream
// length (1X = 100 galaxies, 3X, 5X, 10X) and a "heavy" variant that adds a
// beta(2,5)-distributed delay inside getVOTable and filterColumns. Real
// service times (seconds: VO-service downloads) are scaled to milliseconds;
// the relative weights are preserved.
package galaxy

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/synth"
)

// Workload multipliers from the paper.
const (
	// BaseGalaxies is the 1X stream length.
	BaseGalaxies = 100
)

// Config parameterizes the workflow.
type Config struct {
	// Galaxies is the stream length; 0 means BaseGalaxies (1X).
	Galaxies int
	// Heavy adds the beta(2,5) delay to getVOTable and filterColumns.
	Heavy bool
	// HeavyMax is the maximum heavy delay (the paper's 1 second, scaled);
	// 0 means 20ms.
	HeavyMax time.Duration
	// VORows is the VO table length per galaxy; 0 means 3.
	VORows int
	// Seed drives the synthetic catalog; the run seed is separate.
	Seed int64
	// OnResult, when non-nil, receives every computed extinction value.
	// It must be safe for concurrent use.
	OnResult func(name string, extinction float64)
}

func (c Config) withDefaults() Config {
	if c.Galaxies <= 0 {
		c.Galaxies = BaseGalaxies
	}
	if c.HeavyMax <= 0 {
		c.HeavyMax = 20 * time.Millisecond
	}
	if c.VORows <= 0 {
		c.VORows = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Scaled returns a config with the paper's NX stream-length multiplier.
func Scaled(x int, heavy bool) Config {
	return Config{Galaxies: BaseGalaxies * x, Heavy: heavy}
}

// VOTablePayload carries a galaxy with its downloaded VO table.
type VOTablePayload struct {
	Galaxy synth.Galaxy
	Rows   []synth.VOTableRow
}

// FilteredPayload carries the two columns the extinction computation needs.
type FilteredPayload struct {
	Name      string
	MorphType float64
	LogR25    float64
}

// ResultPayload is the computed extinction for one galaxy.
type ResultPayload struct {
	Name       string
	Extinction float64
}

func init() {
	codec.Register(synth.Galaxy{})
	codec.Register(VOTablePayload{})
	codec.Register(FilteredPayload{})
	codec.Register(ResultPayload{})
}

// Base service times (scaled from the real workflow's profile: the VO
// download dominates, filtering is cheap, the computation cheapest).
const (
	readCost   = 100 * time.Microsecond
	voCost     = 2 * time.Millisecond
	filterCost = 1 * time.Millisecond
	extCost    = 500 * time.Microsecond
)

// New builds the abstract workflow.
func New(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	g := graph.New("galaxy")

	g.Add(func() core.PE {
		return core.NewSource("readRaDec", func(ctx *core.Context) error {
			catalog := synth.GalaxyCatalog(cfg.Seed, cfg.Galaxies)
			for _, gal := range catalog {
				ctx.Work(readCost)
				if err := ctx.EmitDefault(gal); err != nil {
					return err
				}
			}
			return nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("getVOTable", func(ctx *core.Context, v any) (any, error) {
			gal, ok := v.(synth.Galaxy)
			if !ok {
				return nil, fmt.Errorf("getVOTable: unexpected payload %T", v)
			}
			ctx.Work(voCost)
			if cfg.Heavy {
				frac := synth.Beta(ctx.Rand(), 2, 5)
				ctx.Work(time.Duration(frac * float64(cfg.HeavyMax)))
			}
			rows := synth.MakeVOTable(gal, cfg.VORows, cfg.Seed)
			return VOTablePayload{Galaxy: gal, Rows: rows}, nil
		})
	})

	g.Add(func() core.PE {
		return core.NewMap("filterColumns", func(ctx *core.Context, v any) (any, error) {
			p, ok := v.(VOTablePayload)
			if !ok {
				return nil, fmt.Errorf("filterColumns: unexpected payload %T", v)
			}
			ctx.Work(filterCost)
			if cfg.Heavy {
				frac := synth.Beta(ctx.Rand(), 2, 5)
				ctx.Work(time.Duration(frac * float64(cfg.HeavyMax)))
			}
			if len(p.Rows) == 0 {
				return nil, fmt.Errorf("filterColumns: galaxy %s has empty VO table", p.Galaxy.Name)
			}
			row := p.Rows[0]
			return FilteredPayload{
				Name:      p.Galaxy.Name,
				MorphType: row.Columns["t"],
				LogR25:    row.Columns["logr25"],
			}, nil
		})
	})

	g.Add(func() core.PE {
		return core.NewEach("internalExtinction", func(ctx *core.Context, v any) error {
			p, ok := v.(FilteredPayload)
			if !ok {
				return fmt.Errorf("internalExtinction: unexpected payload %T", v)
			}
			ctx.Work(extCost)
			ext := synth.InternalExtinction(p.MorphType, p.LogR25)
			if cfg.OnResult != nil {
				cfg.OnResult(p.Name, ext)
			}
			return ctx.EmitDefault(ResultPayload{Name: p.Name, Extinction: ext})
		})
	})

	g.Pipe("readRaDec", "getVOTable")
	g.Pipe("getVOTable", "filterColumns")
	g.Pipe("filterColumns", "internalExtinction")
	return g
}
