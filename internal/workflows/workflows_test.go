// Package workflows_test exercises the three paper use cases end-to-end
// under every applicable mapping, checking result correctness (not just
// liveness) and cross-mapping agreement.
package workflows_test

import (
	"os"
	"sync"
	"testing"

	_ "repro/internal/dynamic"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/synth"
	"repro/internal/workflows/galaxy"
	"repro/internal/workflows/seismic"
	"repro/internal/workflows/sentiment"
)

func testPlatform() platform.Platform {
	return platform.Platform{Name: "test", Cores: 4, QueueOpCost: 0}
}

func withRedis(t *testing.T, opts mapping.Options) mapping.Options {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	opts.RedisAddr = srv.Addr()
	return opts
}

type extCollector struct {
	mu   sync.Mutex
	exts map[string]float64
}

func newExtCollector() *extCollector { return &extCollector{exts: map[string]float64{}} }

func (c *extCollector) add(name string, ext float64) {
	c.mu.Lock()
	c.exts[name] = ext
	c.mu.Unlock()
}

func (c *extCollector) snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.exts))
	for k, v := range c.exts {
		out[k] = v
	}
	return out
}

func TestGalaxyUnderAllMappings(t *testing.T) {
	const n = 20
	reference := map[string]float64{}
	{
		col := newExtCollector()
		g := galaxy.New(galaxy.Config{Galaxies: n, OnResult: col.add})
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, mapping.Options{Processes: 1, Platform: testPlatform(), Seed: 5}); err != nil {
			t.Fatal(err)
		}
		reference = col.snapshot()
		if len(reference) != n {
			t.Fatalf("reference run computed %d extinctions, want %d", len(reference), n)
		}
	}
	for _, name := range []string{"multi", "mpi", "dyn_multi", "dyn_auto_multi", "dyn_redis", "dyn_auto_redis", "hybrid_redis"} {
		t.Run(name, func(t *testing.T) {
			col := newExtCollector()
			g := galaxy.New(galaxy.Config{Galaxies: n, OnResult: col.add})
			m, err := mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := mapping.Options{Processes: 5, Platform: testPlatform(), Seed: 5}
			if name == "dyn_redis" || name == "dyn_auto_redis" || name == "hybrid_redis" {
				opts = withRedis(t, opts)
			}
			rep, err := m.Execute(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := col.snapshot()
			if len(got) != n {
				t.Fatalf("%d extinctions, want %d", len(got), n)
			}
			for name, want := range reference {
				if got[name] != want {
					t.Errorf("galaxy %s extinction %v, want %v", name, got[name], want)
				}
			}
			if rep.Outputs != n {
				t.Errorf("outputs=%d want %d", rep.Outputs, n)
			}
		})
	}
}

func TestGalaxyHeavyAddsDelay(t *testing.T) {
	run := func(heavy bool) (runtime float64) {
		g := galaxy.New(galaxy.Config{Galaxies: 10, Heavy: heavy})
		m, _ := mapping.Get("simple")
		rep, err := m.Execute(g, mapping.Options{Processes: 1, Platform: testPlatform(), Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Runtime.Seconds()
	}
	std := run(false)
	heavy := run(true)
	if heavy <= std {
		t.Errorf("heavy runtime %.3fs not above standard %.3fs", heavy, std)
	}
}

func TestGalaxyScaledConfig(t *testing.T) {
	cfg := galaxy.Scaled(5, true)
	if cfg.Galaxies != 500 || !cfg.Heavy {
		t.Errorf("Scaled(5, true) = %+v", cfg)
	}
}

func TestSeismicWritesAllStations(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	written := map[string]int{}
	g := seismic.New(seismic.Config{
		Stations: 12, Samples: 500, OutDir: dir,
		OnWrite: func(st string, n int) {
			mu.Lock()
			written[st] = n
			mu.Unlock()
		},
	})
	m, _ := mapping.Get("dyn_multi")
	rep, err := m.Execute(g, mapping.Options{Processes: 4, Platform: testPlatform(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 12 {
		t.Fatalf("wrote %d stations, want 12", len(written))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Errorf("%d files on disk, want 12", len(entries))
	}
	if rep.Outputs != 12 {
		t.Errorf("outputs=%d want 12", rep.Outputs)
	}
	// Each PE saw each station once: 1 generate + 8 downstream PEs × 12.
	if rep.Tasks != 1+8*12 {
		t.Errorf("tasks=%d want %d", rep.Tasks, 1+8*12)
	}
}

func TestSeismicHasNinePEs(t *testing.T) {
	g := seismic.New(seismic.Config{})
	if got := len(g.Nodes()); got != 9 {
		t.Errorf("seismic phase 1 has %d PEs, want 9 per the paper", got)
	}
	if g.HasStateful() {
		t.Error("phase 1 must be fully stateless")
	}
	if g.MinStaticProcesses() != 9 {
		t.Errorf("multi minimum %d, want 9 (the paper starts multi at 12 ≥ 9)", g.MinStaticProcesses())
	}
}

func TestSeismicPhase2TopPairs(t *testing.T) {
	var mu sync.Mutex
	var got []seismic.PairPayload
	g := seismic.NewPhase2(seismic.Config{Stations: 20, Samples: 400}, 3, func(pairs []seismic.PairPayload) {
		mu.Lock()
		got = append([]seismic.PairPayload(nil), pairs...)
		mu.Unlock()
	})
	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, mapping.Options{Processes: 7, Platform: testPlatform(), Seed: 3}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || len(got) > 3 {
		t.Fatalf("top pairs: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Peak > got[i-1].Peak {
			t.Errorf("top pairs not sorted: %+v", got)
		}
	}
}

func sentimentTop3(t *testing.T, mappingName string, procs int, articles int) []sentiment.StateScore {
	t.Helper()
	var mu sync.Mutex
	var got []sentiment.StateScore
	g := sentiment.New(sentiment.Config{
		Articles: articles,
		OnTop3: func(s []sentiment.StateScore) {
			mu.Lock()
			got = append([]sentiment.StateScore(nil), s...)
			mu.Unlock()
		},
	})
	m, err := mapping.Get(mappingName)
	if err != nil {
		t.Fatal(err)
	}
	opts := mapping.Options{Processes: procs, Platform: testPlatform(), Seed: 6}
	if mappingName == "hybrid_redis" {
		opts = withRedis(t, opts)
	}
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

func TestSentimentTop3AgreesAcrossMappings(t *testing.T) {
	const articles = 60
	ref := sentimentTop3(t, "simple", 1, articles)
	if len(ref) != 3 {
		t.Fatalf("reference top3: %+v", ref)
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].Score > ref[i-1].Score {
			t.Fatalf("reference not sorted: %+v", ref)
		}
	}
	for _, tc := range []struct {
		name  string
		procs int
	}{
		{"multi", sentiment.MinMultiProcesses},
		{"mpi", sentiment.MinMultiProcesses},
		{"hybrid_redis", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := sentimentTop3(t, tc.name, tc.procs, articles)
			if len(got) != 3 {
				t.Fatalf("top3: %+v", got)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("rank %d: got %+v want %+v", i, got[i], ref[i])
				}
			}
		})
	}
}

func TestSentimentMinMultiProcesses(t *testing.T) {
	g := sentiment.New(sentiment.Config{})
	if got := g.MinStaticProcesses(); got != sentiment.MinMultiProcesses || sentiment.MinMultiProcesses != 14 {
		t.Errorf("min static processes = %d, want 14 (paper's multi minimum)", got)
	}
	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, mapping.Options{Processes: 10, Platform: testPlatform()}); err == nil {
		t.Error("multi below its minimum should fail")
	}
}

func TestSentimentRejectsDynamicMappings(t *testing.T) {
	g := sentiment.New(sentiment.Config{})
	for _, name := range []string{"dyn_multi", "dyn_auto_multi"} {
		m, _ := mapping.Get(name)
		if _, err := m.Execute(g, mapping.Options{Processes: 8, Platform: testPlatform()}); err == nil {
			t.Errorf("%s must reject the stateful sentiment workflow", name)
		}
	}
}

func sentimentTop3Managed(t *testing.T, mappingName string, procs int, articles int) []sentiment.StateScore {
	t.Helper()
	var mu sync.Mutex
	var got []sentiment.StateScore
	g := sentiment.New(sentiment.Config{
		Articles:     articles,
		ManagedState: true,
		OnTop3: func(s []sentiment.StateScore) {
			mu.Lock()
			got = append([]sentiment.StateScore(nil), s...)
			mu.Unlock()
		},
	})
	m, err := mapping.Get(mappingName)
	if err != nil {
		t.Fatal(err)
	}
	opts := mapping.Options{Processes: procs, Platform: testPlatform(), Seed: 6}
	switch mappingName {
	case "hybrid_redis", "hybrid_auto_redis", "dyn_redis", "dyn_auto_redis":
		opts = withRedis(t, opts)
	}
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestSentimentManagedStateAgreesEverywhere is the headline capability of
// the state subsystem: the managed-state sentiment workflow produces the
// field-state reference ranking under every mapping — including the plain
// dynamic mappings, which reject the field-state version outright.
func TestSentimentManagedStateAgreesEverywhere(t *testing.T) {
	const articles = 60
	ref := sentimentTop3(t, "simple", 1, articles)
	if len(ref) != 3 {
		t.Fatalf("reference top3: %+v", ref)
	}
	for _, tc := range []struct {
		name  string
		procs int
	}{
		{"simple", 1},
		{"multi", sentiment.MinMultiProcesses},
		{"dyn_multi", 6},
		{"dyn_auto_multi", 6},
		{"dyn_redis", 6},
		{"dyn_auto_redis", 6},
		{"hybrid_redis", 8},
		{"hybrid_auto_redis", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := sentimentTop3Managed(t, tc.name, tc.procs, articles)
			if len(got) != 3 {
				t.Fatalf("top3: %+v", got)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("rank %d: got %+v want %+v", i, got[i], ref[i])
				}
			}
		})
	}
}

func TestSentimentTop3IsPlausible(t *testing.T) {
	// The synthetic corpus biases states deterministically; the top-3 must
	// be valid states with the highest scores overall.
	got := sentimentTop3(t, "simple", 1, 80)
	valid := map[string]bool{}
	for _, s := range synth.USStates {
		valid[s] = true
	}
	for _, s := range got {
		if !valid[s.State] {
			t.Errorf("top3 contains unknown state %q", s.State)
		}
	}
}
