package mapping

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/state"
	"repro/internal/synth"
)

// Simple is the sequential mapping: one instance per PE, executed in a
// single process by synchronous depth-first data propagation. It defines
// the reference semantics every parallel mapping must agree with, and it is
// the mapping the paper notes dynamic scheduling is "ineffective with"
// (there is nothing to schedule).
type Simple struct{}

func init() { Register(Simple{}) }

// Name implements Mapping.
func (Simple) Name() string { return "simple" }

// Execute implements Mapping.
func (Simple) Execute(g *graph.Graph, opts Options) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	host := platform.NewHost(opts.Platform)
	proc := host.NewProcess("simple-0")
	proc.Activate()
	defer proc.Deactivate()

	ms, err := OpenManagedState(g, opts, func() state.Backend { return state.NewMemoryBackend() })
	if err != nil {
		return metrics.Report{}, err
	}
	success := false
	defer func() { ms.Finish(g, success) }()

	var tasks, outputs atomic.Int64

	// One instance per PE.
	pes := make(map[string]core.PE, len(g.Nodes()))
	ctxs := make(map[string]*core.Context, len(g.Nodes()))
	for _, n := range g.Nodes() {
		pes[n.Name] = n.Factory()
	}

	// route delivers a value emitted by node src on port to all destinations,
	// recursively (synchronous depth-first streaming).
	var route func(src, port string, value any) error
	for _, n := range g.Nodes() {
		n := n
		ctx := core.NewContext(
			n.Name, 0, host,
			synth.NewRand(opts.Seed^int64(graph.Hash32(n.Name))),
			func(port string, value any) error { return route(n.Name, port, value) },
		)
		if st := ms.Store(n.Name); st != nil {
			ctx = ctx.WithStore(st)
		}
		ctxs[n.Name] = ctx
	}
	route = func(src, port string, value any) error {
		for _, e := range g.OutEdges(src) {
			if e.FromPort != port {
				continue
			}
			tasks.Add(1)
			if len(g.OutEdges(e.To)) == 0 {
				// Delivery into a terminal PE counts as a workflow output.
				// Emissions on unconnected ports are silently discarded,
				// matching dispel4py's behaviour for unconnected outputs.
				outputs.Add(1)
			}
			if err := pes[e.To].Process(ctxs[e.To], e.ToPort, value); err != nil {
				return fmt.Errorf("simple: PE %s: %w", e.To, err)
			}
		}
		return nil
	}

	start := time.Now()
	// Init hooks in topological order.
	order, err := g.TopoSort()
	if err != nil {
		return metrics.Report{}, err
	}
	for _, name := range order {
		if ini, ok := pes[name].(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				return metrics.Report{}, fmt.Errorf("simple: init %s: %w", name, err)
			}
		}
	}
	// Drive the sources.
	for _, n := range g.Sources() {
		src, ok := pes[n.Name].(core.Source)
		if !ok {
			return metrics.Report{}, fmt.Errorf("simple: %s is not a source", n.Name)
		}
		tasks.Add(1)
		if err := src.Generate(ctxs[n.Name]); err != nil {
			return metrics.Report{}, fmt.Errorf("simple: source %s: %w", n.Name, err)
		}
	}
	// Finalize in topological order so flushed aggregates flow downstream.
	for _, name := range order {
		if fin, ok := pes[name].(core.Finalizer); ok {
			if err := fin.Final(ctxs[name]); err != nil {
				return metrics.Report{}, fmt.Errorf("simple: final %s: %w", name, err)
			}
		}
	}
	runtime := time.Since(start)
	proc.Deactivate()
	success = true

	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     "simple",
		Platform:    opts.Platform.Name,
		Processes:   1,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
		State:       ms.Ops(),
	}, nil
}
