package mapping_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"      // register mpi
	_ "repro/internal/redismap" // register redis mappings
	"repro/internal/state"
)

// TestQuickAllMappingsAgreeOnRandomPipelines is the engine conformance
// property: for randomly-shaped stateless linear pipelines (random stage
// count, random per-stage affine transforms, random stream length), every
// mapping must deliver exactly the same multiset of values to the sink as
// the sequential reference.
func TestQuickAllMappingsAgreeOnRandomPipelines(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type shape struct {
		Stages uint8
		Items  uint8
		MulRaw uint8
		AddRaw int8
	}

	build := func(s shape, sink func(int)) *graph.Graph {
		stages := int(s.Stages%4) + 1 // 1..4 transform stages
		items := int(s.Items%20) + 1  // 1..20 stream items
		mul := int(s.MulRaw%5) + 1
		add := int(s.AddRaw)
		g := graph.New("quickpipe")
		g.Add(func() core.PE {
			return core.NewSource("gen", func(ctx *core.Context) error {
				for i := 0; i < items; i++ {
					if err := ctx.EmitDefault(i); err != nil {
						return err
					}
				}
				return nil
			})
		})
		prev := "gen"
		for st := 0; st < stages; st++ {
			name := fmt.Sprintf("stage%d", st)
			g.Add(func() core.PE {
				return core.NewMap(name, func(ctx *core.Context, v any) (any, error) {
					return v.(int)*mul + add, nil
				})
			})
			g.Pipe(prev, name)
			prev = name
		}
		g.Add(func() core.PE {
			return core.NewSink("sink", func(ctx *core.Context, v any) error {
				sink(v.(int))
				return nil
			})
		})
		g.Pipe(prev, "sink")
		return g
	}

	runUnder := func(name string, s shape) ([]int, error) {
		var mu sync.Mutex
		var got []int
		g := build(s, func(v int) {
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		})
		m, err := mapping.Get(name)
		if err != nil {
			return nil, err
		}
		// Up to 6 PEs (gen + 4 stages + sink): static mappings need one
		// process per instance.
		opts := testOpts(8)
		if name == "dyn_redis" || name == "hybrid_redis" {
			opts.RedisAddr = srv.Addr()
		}
		if _, err := m.Execute(g, opts); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		sort.Ints(got)
		return got, nil
	}

	f := func(s shape) bool {
		want, err := runUnder("simple", s)
		if err != nil {
			t.Logf("simple: %v", err)
			return false
		}
		for _, name := range []string{"multi", "mpi", "dyn_multi", "dyn_redis", "hybrid_redis"} {
			got, err := runUnder(name, s)
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if len(got) != len(want) {
				t.Logf("%s: %d values want %d (shape %+v)", name, len(got), len(want), s)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("%s: value %d = %d want %d (shape %+v)", name, i, got[i], want[i], s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// keyedItem is the payload of the keyed stateful-aggregation conformance
// workflow (registered with codec so it survives the Redis transports).
type keyedItem struct {
	Key string
	Val int64
	// Crash makes the aggregator fail when it sees this item (the
	// kill-and-restore scenario).
	Crash bool
}

func init() { codec.Register(keyedItem{}) }

// keyedAggGraph builds gen → count(keyed managed state, aggInstances) →
// sink. gen emits items; count accumulates per-key totals via AddInt and
// flushes "key=total" lines from its engine-invoked Final; sink collects.
func keyedAggGraph(items []keyedItem, aggInstances int, collect func(string)) *graph.Graph {
	g := graph.New("keyedagg")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for _, it := range items {
				if err := ctx.EmitDefault(it); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE { return &keyedCountPE{Base: core.NewBase("count", core.In(), core.Out())} }).
		SetInstances(aggInstances).
		SetKeyedState()
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			collect(v.(string))
			return nil
		})
	})
	g.Pipe("gen", "count").SetGrouping(graph.GroupByKey(func(v any) string { return v.(keyedItem).Key }))
	g.Pipe("count", "sink")
	return g
}

// keyedCountPE is a managed keyed-state aggregator: no PE fields, all state
// in the store.
type keyedCountPE struct {
	core.Base
}

func (p *keyedCountPE) Process(ctx *core.Context, port string, v any) error {
	it := v.(keyedItem)
	if it.Crash {
		return fmt.Errorf("count: injected crash on key %s", it.Key)
	}
	_, err := ctx.State().AddInt(it.Key, it.Val)
	return err
}

func (p *keyedCountPE) Final(ctx *core.Context) error {
	entries, err := state.SortedEntries(ctx.State())
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.EmitDefault(e.Key + "=" + e.Value); err != nil {
			return err
		}
	}
	return nil
}

// keyedAggItems builds a deterministic stream touching several keys.
func keyedAggItems(n int) []keyedItem {
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	items := make([]keyedItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, keyedItem{Key: keys[i%len(keys)], Val: int64(i + 1)})
	}
	return items
}

// TestKeyedStateConformanceAcrossMappings asserts the state-subsystem
// contract: a keyed stateful aggregation at instances > 1 produces identical
// totals under every mapping — the static ones (partitioned access), the
// hybrid (pinned instances), and the plain dynamic ones (shared atomic
// store), which reject unmanaged stateful workflows outright.
func TestKeyedStateConformanceAcrossMappings(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	items := keyedAggItems(60)
	run := func(name string, procs int) ([]string, error) {
		var mu sync.Mutex
		var got []string
		g := keyedAggGraph(items, 3, func(s string) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		})
		m, err := mapping.Get(name)
		if err != nil {
			return nil, err
		}
		opts := testOpts(procs)
		switch name {
		case "dyn_redis", "dyn_auto_redis", "hybrid_redis", "hybrid_auto_redis":
			opts.RedisAddr = srv.Addr()
		}
		if _, err := m.Execute(g, opts); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		sort.Strings(got)
		return got, nil
	}

	want, err := run("simple", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 5 {
		t.Fatalf("reference flush: %v", want)
	}
	for _, tc := range []struct {
		name  string
		procs int
	}{
		{"multi", 6}, // count at 3 instances: keyed scale-out in-process
		{"mpi", 6},   // managed state via the shared runtime finalization barrier
		{"dyn_multi", 4},
		{"dyn_auto_multi", 4},
		{"dyn_redis", 4},
		{"dyn_auto_redis", 4},
		{"hybrid_redis", 5}, // 3 pinned count instances + stateless pool
		{"hybrid_auto_redis", 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := run(tc.name, tc.procs)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("totals diverge:\n got %v\nwant %v", got, want)
			}
		})
	}

	// The unmanaged equivalent must still be rejected by dynamic scheduling:
	// managed state is the enabler, not a general stateful free-for-all.
	gLegacy := keyedAggGraph(items, 3, func(string) {})
	gLegacy.Node("count").State = graph.StateNone
	m, _ := mapping.Get("dyn_multi")
	if _, err := m.Execute(gLegacy, testOpts(4)); err == nil {
		t.Error("dyn_multi accepted an unmanaged stateful grouped workflow")
	}
}

// TestKeyedStateKillAndRestore is the recovery scenario: a run crashes
// mid-stream, its managed state survives on an external backend (checkpoint
// per mutation), and a resumed run over the remaining items produces the
// same totals as one uninterrupted run — exercised against both backends.
func TestKeyedStateKillAndRestore(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	items := keyedAggItems(40)
	half := len(items) / 2

	reference := func(t *testing.T) []string {
		var got []string
		g := keyedAggGraph(items, 1, func(s string) { got = append(got, s) })
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, testOpts(1)); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got
	}

	runCase := func(t *testing.T, backend state.Backend) {
		want := reference(t)

		// Run 1: first half of the stream, then an injected crash. State
		// lands on the external backend; the failure keeps it there.
		crashing := append(append([]keyedItem(nil), items[:half]...), keyedItem{Key: "alpha", Crash: true})
		g1 := keyedAggGraph(crashing, 1, func(string) {})
		opts := testOpts(1)
		opts.StateBackend = backend
		opts.StateCheckpointEvery = 1
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g1, opts); err == nil {
			t.Fatal("crashing run reported success")
		}
		snap, ok, err := backend.LoadCheckpoint(state.Namespace("keyedagg", "count"))
		if err != nil || !ok {
			t.Fatalf("no checkpoint survived the crash: ok=%v err=%v", ok, err)
		}
		if len(snap) == 0 {
			t.Fatal("checkpoint is empty")
		}

		// Run 2: resume from the checkpoint and feed the remaining items.
		var got []string
		g2 := keyedAggGraph(items[half:], 1, func(s string) { got = append(got, s) })
		opts2 := testOpts(1)
		opts2.StateBackend = backend
		opts2.StateResume = true
		if _, err := m.Execute(g2, opts2); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("resumed totals diverge:\n got %v\nwant %v", got, want)
		}
	}

	t.Run("memory", func(t *testing.T) {
		b := state.NewMemoryBackend()
		defer b.Close()
		runCase(t, b)
	})
	t.Run("redis", func(t *testing.T) {
		b := state.DialRedisBackend(srv.Addr(), "recov")
		defer b.Close()
		runCase(t, b)
	})
}
