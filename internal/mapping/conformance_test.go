package mapping_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"      // register mpi
	_ "repro/internal/redismap" // register redis mappings
)

// TestQuickAllMappingsAgreeOnRandomPipelines is the engine conformance
// property: for randomly-shaped stateless linear pipelines (random stage
// count, random per-stage affine transforms, random stream length), every
// mapping must deliver exactly the same multiset of values to the sink as
// the sequential reference.
func TestQuickAllMappingsAgreeOnRandomPipelines(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type shape struct {
		Stages uint8
		Items  uint8
		MulRaw uint8
		AddRaw int8
	}

	build := func(s shape, sink func(int)) *graph.Graph {
		stages := int(s.Stages%4) + 1 // 1..4 transform stages
		items := int(s.Items%20) + 1  // 1..20 stream items
		mul := int(s.MulRaw%5) + 1
		add := int(s.AddRaw)
		g := graph.New("quickpipe")
		g.Add(func() core.PE {
			return core.NewSource("gen", func(ctx *core.Context) error {
				for i := 0; i < items; i++ {
					if err := ctx.EmitDefault(i); err != nil {
						return err
					}
				}
				return nil
			})
		})
		prev := "gen"
		for st := 0; st < stages; st++ {
			name := fmt.Sprintf("stage%d", st)
			g.Add(func() core.PE {
				return core.NewMap(name, func(ctx *core.Context, v any) (any, error) {
					return v.(int)*mul + add, nil
				})
			})
			g.Pipe(prev, name)
			prev = name
		}
		g.Add(func() core.PE {
			return core.NewSink("sink", func(ctx *core.Context, v any) error {
				sink(v.(int))
				return nil
			})
		})
		g.Pipe(prev, "sink")
		return g
	}

	runUnder := func(name string, s shape) ([]int, error) {
		var mu sync.Mutex
		var got []int
		g := build(s, func(v int) {
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		})
		m, err := mapping.Get(name)
		if err != nil {
			return nil, err
		}
		// Up to 6 PEs (gen + 4 stages + sink): static mappings need one
		// process per instance.
		opts := testOpts(8)
		if name == "dyn_redis" || name == "hybrid_redis" {
			opts.RedisAddr = srv.Addr()
		}
		if _, err := m.Execute(g, opts); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		sort.Ints(got)
		return got, nil
	}

	f := func(s shape) bool {
		want, err := runUnder("simple", s)
		if err != nil {
			t.Logf("simple: %v", err)
			return false
		}
		for _, name := range []string{"multi", "mpi", "dyn_multi", "dyn_redis", "hybrid_redis"} {
			got, err := runUnder(name, s)
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if len(got) != len(want) {
				t.Logf("%s: %d values want %d (shape %+v)", name, len(got), len(want), s)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("%s: value %d = %d want %d (shape %+v)", name, i, got[i], want[i], s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
