// Package mapping defines the interface every dispel4py-style enactment
// engine implements ("mapping is the process of 'translating' workflows onto
// execution systems"), a registry of the available mappings, and the Simple
// sequential mapping.
//
// The mappings implemented across this repository, matching the paper's
// evaluation section:
//
//	simple          sequential in-process execution (reference semantics)
//	multi           static Multiprocessing: one process per PE instance
//	mpi             static message-passing variant over internal/mpi
//	dyn_multi       dynamic scheduling over an in-process global queue
//	dyn_auto_multi  dyn_multi + auto-scaler (queue-size strategy)
//	dyn_redis       dynamic scheduling over a Redis stream consumer group
//	dyn_auto_redis  dyn_redis + auto-scaler (idle-time strategy)
//	hybrid_redis    stateful instances on private queues + dynamic stateless pool
package mapping

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// AutoBatch, assigned to EmitBatch or PullBatch, sizes that batch window
// adaptively at run time: each worker tracks the transport's observed
// per-operation round-trip cost with an EWMA and grows its window while the
// amortized per-task share of a round trip stays above the budget (shrinking
// again when deliveries underfill the window). Heavyweight transports
// (Redis) converge on large windows, cheap in-process transports stay small,
// without a compile-time constant picking sides.
const AutoBatch = -1

// Options configures one workflow execution.
type Options struct {
	// Processes is the worker process budget.
	Processes int
	// Platform selects the simulated host; zero value means platform.Server.
	Platform platform.Platform
	// Seed drives all deterministic randomness in the run.
	Seed int64
	// RedisAddr is the server address for Redis-backed mappings.
	RedisAddr string
	// RedisAddrs lists the shard servers of a sharded Redis data plane, in
	// ring order (the order is part of the placement: shard i's ring arc is
	// derived from its index). Empty falls back to the single RedisAddr.
	// The Redis planners route the task stream, state namespaces, fence
	// ledgers and telemetry gauges across these shards through one shared
	// redisclient.Cluster.
	RedisAddrs []string
	// StateCoalesce group-commits unfenced AddInt state ops per shard: all
	// increments concurrently in flight across workers merge into one
	// pipelined HINCRBY flush on the namespace's shard, while each caller
	// still observes its exact intermediate value. Worth switching on for
	// high-rate keyed-counter workloads (the zipfian sessionization hot
	// path); off by default because it reorders independent keys' round
	// trips, which microbenchmarks asserting exact trip counts care about.
	StateCoalesce bool
	// PollTimeout is how long dynamic workers block on an empty queue before
	// counting a retry. Zero means 2ms.
	PollTimeout time.Duration
	// Retries is the retry budget of the termination protocol. Zero means 5.
	Retries int
	// AutoScale overrides the auto-scaler configuration of the auto
	// mappings; nil means defaults (max pool = Processes, initial = half).
	AutoScale *autoscale.Config
	// Strategy overrides the auto-scaling strategy; nil means the paper's
	// default per mapping (queue-size for multiprocessing, idle-time for
	// Redis). The refined autoscale.ProportionalQueueStrategy is the main
	// alternative.
	Strategy autoscale.Strategy
	// Trace, when non-nil, collects auto-scaler trace points (Figure 13).
	Trace *autoscale.Trace
	// RecoverStale enables XAUTOCLAIM-based recovery of pending tasks
	// whose consumer stopped acknowledging them (Redis mappings only).
	// Execution becomes at-least-once: a task abandoned mid-flight may be
	// re-run by another worker — possibly while the original worker is
	// still alive, so both executions race. With managed-state PEs this
	// implies ExactlyOnceState, so the race cannot double-apply store
	// mutations.
	RecoverStale bool
	// RecoverIdle is the minimum idle time before RecoverStale reclaims a
	// pending delivery from its consumer. Zero means 8× PollTimeout — the
	// aggressive setting failure-injection tests want. Production-shaped
	// runs should set it above the worst-case residency of a prefetched
	// batch (PullBatch window × per-task service time): a too-small value
	// does not break correctness (the exactly-once fence absorbs the
	// resulting duplicate executions) but re-runs work that was never lost.
	RecoverIdle time.Duration
	// ExactlyOnceState fences managed-state writes against duplicate task
	// executions: every task is stamped with a deterministic provenance +
	// sequence identity, and each store records an applied ledger (persisted
	// with the namespace, so checkpoints and StateResume keep the fence)
	// that drops mutations whose identity was already applied. It is
	// implied by RecoverStale on workflows with managed state; set it
	// explicitly to fence against duplicate deliveries from other sources.
	// Emissions to PEs without managed state remain at-least-once.
	ExactlyOnceState bool
	// StateBackend overrides the managed-state backend. nil means a private
	// per-run backend (in-memory for the in-process mappings, a run-prefixed
	// Redis backend for the Redis mappings). Supplying an external backend
	// makes state survive the run: on failure the namespaces are kept, so a
	// follow-up run with StateResume can pick up from the last checkpoint.
	StateBackend state.Backend
	// StateResume restores each managed store from its last checkpoint (when
	// one exists) before execution instead of starting from empty state. It
	// requires an explicit StateBackend — a default per-run backend cannot
	// hold a previous run's checkpoints.
	StateResume bool
	// StateCheckpointEvery checkpoints each managed store after every N
	// mutations (0 disables auto-checkpointing). Lower values bound the
	// state lost to a crash at the cost of more checkpoint writes.
	StateCheckpointEvery int
	// EmitBatch buffers up to this many emitted tasks per worker and hands
	// them to the transport in one batched push: Redis transports pipeline
	// the XADD/RPUSH commands into a single round trip, in-process
	// transports pay one synchronization cost per batch. 1 disables
	// batching; 0 picks the mapping's default (AutoBatch on the Redis
	// mappings, unbatched elsewhere); AutoBatch sizes the window adaptively.
	// A worker's batch is always flushed before any task that emitted into
	// it is released, so termination accounting is unaffected.
	EmitBatch int
	// PullBatch caps how many tasks a worker takes from the transport per
	// consume round trip, holding the surplus in a worker-local prefetch
	// buffer: the Redis transport reads XREADGROUP COUNT n (LPOP count on
	// private lists), the in-process queue dequeues the window under one
	// lock hold. Acknowledgements are batched symmetrically — one pipelined
	// release per pulled batch, flushed before the buffer refills — and
	// prefetched tasks stay pending until acknowledged, so the coordinator's
	// drain never unblocks early. 1 disables batching; 0 picks the mapping's
	// default (AutoBatch on the Redis mappings, unbatched elsewhere);
	// AutoBatch sizes the window adaptively.
	PullBatch int
	// Telemetry, when non-nil, receives live metrics from the run: per-worker
	// pull/ack/emit-flush latency histograms and batch sizes, transport
	// queue-depth gauges, managed-state per-op latencies and fence-drop
	// counts, and sampled task-hop traces. The registry may be shared across
	// runs (counters accumulate); nil keeps every hot path uninstrumented.
	Telemetry *telemetry.Registry
	// TelemetryEvery, with Telemetry set, records a flight-recorder snapshot
	// of the registry at this period while the run executes (0 disables).
	TelemetryEvery time.Duration
	// Diagnosis, when non-nil, receives bottleneck-attribution signals from
	// the run: the per-PE/per-edge flow ledger (tasks, bytes, service time,
	// sampled queue wait, fence drops, replays) fed by the worker loop and
	// router, and the run-event journal (worker lifecycle, reclaims, lease
	// extensions, fence drops, pill routing, checkpoints, sizer resizes).
	// Critical-path decomposition additionally needs Telemetry (it reads the
	// tracer's assembled paths); the straggler detector needs TelemetryEvery
	// flights. Like the registry, a Diag may be shared across runs, in which
	// case ledger rows accumulate. nil costs a pointer test and nothing else.
	Diagnosis *diagnosis.Diag
	// EmitFlushEvery bounds how long a partially-filled emit batch may age
	// before being flushed. The age is checked at each emission (and the
	// batch always flushes before the worker's prefetch buffer refills, so
	// with single-task pulls it flushes at every task end), so the bound
	// kicks in for sources that keep emitting across a long Generate; a PE
	// that emits once and then only computes holds its batch until the
	// refill-time flush. Zero defaults to 2ms when EmitBatch enables
	// batching.
	EmitFlushEvery time.Duration
}

// WithDefaults fills zero-valued fields.
func (o Options) WithDefaults() Options {
	if o.Processes <= 0 {
		o.Processes = 1
	}
	if o.Platform.Cores == 0 {
		o.Platform = platform.Server
	}
	if o.PollTimeout <= 0 {
		o.PollTimeout = 2 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 5
	}
	if (o.EmitBatch > 1 || o.EmitBatch == AutoBatch) && o.EmitFlushEvery <= 0 {
		o.EmitFlushEvery = 2 * time.Millisecond
	}
	return o
}

// ShardAddrs resolves the Redis data-plane addresses: RedisAddrs when set,
// else the single RedisAddr (nil when neither is configured). Every layer
// that dials Redis goes through this, so a run cannot end up with its
// transport and state backend on different shard sets.
func (o Options) ShardAddrs() []string {
	if len(o.RedisAddrs) > 0 {
		return o.RedisAddrs
	}
	if o.RedisAddr != "" {
		return []string{o.RedisAddr}
	}
	return nil
}

// ResolveBatching fills zero-valued batch knobs with a mapping's defaults
// (planners call it before handing options to the runtime), leaving explicit
// settings — including an explicit 1 = "off" — untouched.
func (o Options) ResolveBatching(defaultEmit, defaultPull int) Options {
	if o.EmitBatch == 0 {
		o.EmitBatch = defaultEmit
	}
	if o.PullBatch == 0 {
		o.PullBatch = defaultPull
	}
	return o
}

// ValidateBatching rejects batch knob values outside {AutoBatch, 0, 1, n>1}.
// The runtime calls it once per execution so a typo'd negative size fails
// loudly instead of silently disabling batching.
func (o Options) ValidateBatching() error {
	if o.EmitBatch < AutoBatch {
		return fmt.Errorf("mapping: Options.EmitBatch = %d is invalid (want AutoBatch, 0, or a positive size)", o.EmitBatch)
	}
	if o.PullBatch < AutoBatch {
		return fmt.Errorf("mapping: Options.PullBatch = %d is invalid (want AutoBatch, 0, or a positive size)", o.PullBatch)
	}
	return nil
}

// Mapping executes abstract workflows on a concrete engine.
type Mapping interface {
	// Name is the technique label used in reports and the registry.
	Name() string
	// Execute runs the workflow and reports its metrics.
	Execute(g *graph.Graph, opts Options) (metrics.Report, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Mapping{}
)

// Register adds a mapping to the global registry. Mapping packages call it
// from init; duplicate names panic immediately.
func Register(m Mapping) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.Name()]; dup {
		panic(fmt.Sprintf("mapping: duplicate registration of %q", m.Name()))
	}
	registry[m.Name()] = m
}

// Get looks up a registered mapping by name.
func Get(name string) (Mapping, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mapping: unknown mapping %q (have %v)", name, Names())
	}
	return m, nil
}

// Names returns the registered mapping names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
