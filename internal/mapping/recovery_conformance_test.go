package mapping_test

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/runtime"
	"repro/internal/state"
)

// chaosDupAckID tags wrapper-injected duplicate deliveries on transports
// without per-delivery acknowledgement state (chan, queue, rank), so their
// acks are swallowed by the wrapper instead of double-decrementing the
// pending counter. The Redis transport keeps the real entry ID: its fenced
// ack path is exactly what must absorb the duplicate.
const chaosDupAckID = "chaos:dup"

// chaosTransport wraps a real transport and injects duplicate deliveries:
// selected tasks are delivered a second time, preferably to a different
// worker, while the original delivery proceeds normally — the observable
// behaviour of an at-least-once replay racing the still-alive original
// (XAUTOCLAIM after a worker stalls, a killed worker's batch re-claimed
// mid-flight). With exactly-once fencing the duplicates must be invisible
// to managed state and to termination accounting.
type chaosTransport struct {
	inner runtime.Transport
	// eligible selects envelopes to duplicate.
	eligible func(runtime.Env) bool
	// target picks the worker a duplicate is delivered to.
	target func(env runtime.Env, from, workers int) int
	// stripDupAcks marks in-process transports whose duplicate acks the
	// wrapper must swallow.
	stripDupAcks bool
	workers      int
	budget       int

	mu     sync.Mutex
	seen   map[[2]uint64]bool
	stash  map[int][]runtime.Env
	issued int
}

func newChaosTransport(inner runtime.Transport, workers, budget int, stripDupAcks bool,
	eligible func(runtime.Env) bool, target func(env runtime.Env, from, workers int) int) *chaosTransport {
	return &chaosTransport{
		inner: inner, eligible: eligible, target: target, stripDupAcks: stripDupAcks,
		workers: workers, budget: budget,
		seen: map[[2]uint64]bool{}, stash: map[int][]runtime.Env{},
	}
}

// Push implements runtime.Transport.
func (c *chaosTransport) Push(tasks ...runtime.Task) error { return c.inner.Push(tasks...) }

// PullBatch implements runtime.Transport: duplicates stashed for this worker
// are prepended to whatever the real transport delivers, and fresh eligible
// deliveries are copied into the stash of their duplicate's target worker.
func (c *chaosTransport) PullBatch(w, max int, timeout time.Duration) ([]runtime.Env, error) {
	envs, err := c.inner.PullBatch(w, max, timeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range envs {
		if c.issued >= c.budget || env.Poison || !c.eligible(env) {
			continue
		}
		key := [2]uint64{env.Src, env.Seq}
		if env.Src == 0 || c.seen[key] {
			continue
		}
		c.seen[key] = true
		c.issued++
		dup := env
		if c.stripDupAcks {
			dup.AckID = chaosDupAckID
		}
		c.stash[c.target(env, w, c.workers)] = append(c.stash[c.target(env, w, c.workers)], dup)
	}
	if dups := c.stash[w]; len(dups) > 0 {
		delete(c.stash, w)
		return append(dups, envs...), nil
	}
	return envs, nil
}

// Ack implements runtime.Transport, swallowing wrapper-tagged duplicates.
func (c *chaosTransport) Ack(w int, envs ...runtime.Env) error {
	if c.stripDupAcks {
		kept := envs[:0]
		for _, env := range envs {
			if env.AckID != chaosDupAckID {
				kept = append(kept, env)
			}
		}
		envs = kept
	}
	if len(envs) == 0 {
		return nil
	}
	return c.inner.Ack(w, envs...)
}

// Pending implements runtime.Transport.
func (c *chaosTransport) Pending() (int64, error) { return c.inner.Pending() }

// Done implements runtime.Transport.
func (c *chaosTransport) Done() error { return c.inner.Done() }

// Issued reports how many duplicates were injected.
func (c *chaosTransport) Issued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued
}

// TestKillAndReplayExactlyOnceAcrossTransports is the kill-and-replay chaos
// property of the keyed-state conformance suite: on every transport, a
// managed keyed aggregation whose deliveries are replayed mid-run — source
// generates, keyed updates, even the Finalize flush, each executed twice
// with both executions racing — must produce final aggregates byte-identical
// to an undisturbed sequential run. This is what Options.ExactlyOnceState
// (implied by RecoverStale) guarantees: duplicate executions re-stamp
// identical child identities, the store's applied ledger drops re-applied
// updates, the Final gate admits one flush, and duplicate acknowledgements
// never unbalance drain-based termination.
func TestKillAndReplayExactlyOnceAcrossTransports(t *testing.T) {
	items := keyedAggItems(60)

	reference := func(t *testing.T) []string {
		var got []string
		g := keyedAggGraph(items, 1, func(s string) { got = append(got, s) })
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, testOpts(1)); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got
	}
	want := reference(t)

	// Duplicate the fence-relevant deliveries: source generates (their
	// re-emitted children must dedup downstream), keyed-state updates, and
	// the managed node's Finalize. Sink deliveries are left alone — the
	// collector is a side effect outside managed state.
	eligible := func(env runtime.Env) bool { return env.PE == "gen" || env.PE == "count" }

	// The fixtures drive the shared runtime directly: the mappings construct
	// their transports internally, so chaos injection needs this seam.
	type fixture struct {
		name string
		run  func(t *testing.T, collect func(string)) *chaosTransport
	}

	// pinnedTarget redirects a duplicate to another worker owning the same
	// PE when one exists (another count instance), else back to the origin.
	pinnedTarget := func(plan runtime.Plan) func(env runtime.Env, from, workers int) int {
		return func(env runtime.Env, from, workers int) int {
			for w, spec := range plan.Workers {
				if w != from && spec.PE == env.PE {
					return w
				}
			}
			return from
		}
	}
	// poolTarget: any other pool worker holds every pooled PE.
	poolTarget := func(env runtime.Env, from, workers int) int { return (from + 1) % workers }

	fixtures := []fixture{
		{name: "chan", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 2, collect)
			plan := runtime.PinnedPlan(g, map[string]int{"gen": 1, "count": 2, "sink": 1})
			chaos := newChaosTransport(runtime.NewChanTransport(plan, 0), len(plan.Workers), 16, true, eligible, pinnedTarget(plan))
			opts := testOpts(len(plan.Workers))
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-chan", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
		{name: "queue", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 0, collect)
			plan := runtime.PoolPlan(g, 3)
			chaos := newChaosTransport(runtime.NewQueueTransport(runtime.NewQueue(0)), 3, 16, true, eligible, poolTarget)
			opts := testOpts(3)
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-queue", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
		{name: "redis", run: func(t *testing.T, collect func(string)) *chaosTransport {
			srv, err := miniredis.StartTestServer()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			cl := redisclient.Dial(srv.Addr())
			t.Cleanup(func() { cl.Close() })
			g := keyedAggGraph(items, 0, collect)
			plan := runtime.PoolPlan(g, 3)
			keys := runtime.NewRunKeys(g.Name, 5)
			// recoverStale on: duplicate acks of real entry IDs must be
			// absorbed by the transport's consumer-fenced ack path.
			tr, err := runtime.NewRedisTransport(cl, keys, plan, true)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { tr.Cleanup(g) })
			chaos := newChaosTransport(tr, 3, 16, false, eligible, poolTarget)
			opts := testOpts(3)
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-redis", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewRedisBackend(cl, keys.Prefix+":state") },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
		{name: "rank", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 2, collect)
			plan := runtime.PinnedPlan(g, map[string]int{"gen": 1, "count": 2, "sink": 1})
			world, err := mpi.NewWorld(len(plan.Workers))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(world.Close)
			tr, err := runtime.NewRankTransport(world, plan)
			if err != nil {
				t.Fatal(err)
			}
			chaos := newChaosTransport(tr, len(plan.Workers), 16, true, eligible, pinnedTarget(plan))
			opts := testOpts(len(plan.Workers))
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-rank", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
	}

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			var mu sync.Mutex
			var got []string
			chaos := fx.run(t, func(s string) {
				mu.Lock()
				got = append(got, s)
				mu.Unlock()
			})
			mu.Lock()
			sort.Strings(got)
			joined := strings.Join(got, ",")
			mu.Unlock()
			if joined != strings.Join(want, ",") {
				t.Errorf("aggregates diverge under replay:\n got %v\nwant %v", got, want)
			}
			if chaos.Issued() == 0 {
				t.Error("chaos transport injected no duplicates; the test exercised nothing")
			}
		})
	}
}
