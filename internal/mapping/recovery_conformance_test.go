package mapping_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/runtime"
	"repro/internal/state"
)

// chaosDupAckID tags wrapper-injected duplicate deliveries on transports
// without per-delivery acknowledgement state (chan, queue, rank), so their
// acks are swallowed by the wrapper instead of double-decrementing the
// pending counter. The Redis transport keeps the real entry ID: its fenced
// ack path is exactly what must absorb the duplicate.
const chaosDupAckID = "chaos:dup"

// chaosTransport wraps a real transport and injects duplicate deliveries:
// selected tasks are delivered a second time, preferably to a different
// worker, while the original delivery proceeds normally — the observable
// behaviour of an at-least-once replay racing the still-alive original
// (XAUTOCLAIM after a worker stalls, a killed worker's batch re-claimed
// mid-flight). With exactly-once fencing the duplicates must be invisible
// to managed state and to termination accounting.
type chaosTransport struct {
	inner runtime.Transport
	// eligible selects envelopes to duplicate.
	eligible func(runtime.Env) bool
	// target picks the worker a duplicate is delivered to.
	target func(env runtime.Env, from, workers int) int
	// stripDupAcks marks in-process transports whose duplicate acks the
	// wrapper must swallow.
	stripDupAcks bool
	workers      int
	budget       int

	mu     sync.Mutex
	seen   map[[2]uint64]bool
	stash  map[int][]runtime.Env
	issued int
}

func newChaosTransport(inner runtime.Transport, workers, budget int, stripDupAcks bool,
	eligible func(runtime.Env) bool, target func(env runtime.Env, from, workers int) int) *chaosTransport {
	return &chaosTransport{
		inner: inner, eligible: eligible, target: target, stripDupAcks: stripDupAcks,
		workers: workers, budget: budget,
		seen: map[[2]uint64]bool{}, stash: map[int][]runtime.Env{},
	}
}

// Push implements runtime.Transport.
func (c *chaosTransport) Push(tasks ...runtime.Task) error { return c.inner.Push(tasks...) }

// PullBatch implements runtime.Transport: duplicates stashed for this worker
// are prepended to whatever the real transport delivers, and fresh eligible
// deliveries are copied into the stash of their duplicate's target worker.
func (c *chaosTransport) PullBatch(w, max int, timeout time.Duration) ([]runtime.Env, error) {
	envs, err := c.inner.PullBatch(w, max, timeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range envs {
		if c.issued >= c.budget || env.Poison || !c.eligible(env) {
			continue
		}
		key := [2]uint64{env.Src, env.Seq}
		if env.Src == 0 || c.seen[key] {
			continue
		}
		c.seen[key] = true
		c.issued++
		dup := env
		if c.stripDupAcks {
			dup.AckID = chaosDupAckID
		}
		c.stash[c.target(env, w, c.workers)] = append(c.stash[c.target(env, w, c.workers)], dup)
	}
	if dups := c.stash[w]; len(dups) > 0 {
		delete(c.stash, w)
		return append(dups, envs...), nil
	}
	return envs, nil
}

// Ack implements runtime.Transport, swallowing wrapper-tagged duplicates.
func (c *chaosTransport) Ack(w int, envs ...runtime.Env) error {
	if c.stripDupAcks {
		kept := envs[:0]
		for _, env := range envs {
			if env.AckID != chaosDupAckID {
				kept = append(kept, env)
			}
		}
		envs = kept
	}
	if len(envs) == 0 {
		return nil
	}
	return c.inner.Ack(w, envs...)
}

// Pending implements runtime.Transport.
func (c *chaosTransport) Pending() (int64, error) { return c.inner.Pending() }

// Done implements runtime.Transport.
func (c *chaosTransport) Done() error { return c.inner.Done() }

// Issued reports how many duplicates were injected.
func (c *chaosTransport) Issued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued
}

// shardLeakBackend wraps the run's state backend to check the co-location
// invariant while the data still exists: a run's namespaces are dropped on
// success, so the check rides the drop — just before a namespace's live hash
// (state entries plus the fence-ledger fields living inside it) is removed,
// it must be non-empty on exactly one shard, the one the cluster's ring names
// for its key. A hash on two shards means some writer routed around the
// shared cluster, so the exactly-once fence was checking a different ledger
// than the one being written.
type shardLeakBackend struct {
	state.Backend
	t       *testing.T
	cluster *redisclient.Cluster
	prefix  string

	mu      sync.Mutex
	checked int
}

func (b *shardLeakBackend) DropNamespace(ns string) error {
	key := b.prefix + ":st:{" + ns + "}"
	var found []int
	for s := 0; s < b.cluster.NumShards(); s++ {
		if n, err := b.cluster.Shard(s).HLen(key); err == nil && n > 0 {
			found = append(found, s)
		}
	}
	// Empty everywhere is the pre-run hygiene drop (or a namespace that
	// never wrote); only populated hashes witness placement.
	if len(found) > 0 {
		b.mu.Lock()
		b.checked++
		b.mu.Unlock()
		if len(found) > 1 {
			b.t.Errorf("state hash %q present on shards %v — cross-shard fence leak", key, found)
		} else if home := b.cluster.ShardFor(key); found[0] != home {
			b.t.Errorf("state hash %q on shard %d but the ring places it on %d", key, found[0], home)
		}
	}
	return b.Backend.DropNamespace(ns)
}

// verify fails the test when no populated namespace was ever checked.
func (b *shardLeakBackend) verify() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.checked == 0 {
		b.t.Error("no populated state hash was dropped; the leak assertion exercised nothing")
	}
}

// TestKillAndReplayExactlyOnceAcrossTransports is the kill-and-replay chaos
// property of the keyed-state conformance suite: on every transport, a
// managed keyed aggregation whose deliveries are replayed mid-run — source
// generates, keyed updates, even the Finalize flush, each executed twice
// with both executions racing — must produce final aggregates byte-identical
// to an undisturbed sequential run. This is what Options.ExactlyOnceState
// (implied by RecoverStale) guarantees: duplicate executions re-stamp
// identical child identities, the store's applied ledger drops re-applied
// updates, the Final gate admits one flush, and duplicate acknowledgements
// never unbalance drain-based termination.
func TestKillAndReplayExactlyOnceAcrossTransports(t *testing.T) {
	items := keyedAggItems(60)

	reference := func(t *testing.T) []string {
		var got []string
		g := keyedAggGraph(items, 1, func(s string) { got = append(got, s) })
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, testOpts(1)); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got
	}
	want := reference(t)

	// Duplicate the fence-relevant deliveries: source generates (their
	// re-emitted children must dedup downstream), keyed-state updates, and
	// the managed node's Finalize. Sink deliveries are left alone — the
	// collector is a side effect outside managed state.
	eligible := func(env runtime.Env) bool { return env.PE == "gen" || env.PE == "count" }

	// The fixtures drive the shared runtime directly: the mappings construct
	// their transports internally, so chaos injection needs this seam.
	type fixture struct {
		name string
		run  func(t *testing.T, collect func(string)) *chaosTransport
	}

	// pinnedTarget redirects a duplicate to another worker owning the same
	// PE when one exists (another count instance), else back to the origin.
	pinnedTarget := func(plan runtime.Plan) func(env runtime.Env, from, workers int) int {
		return func(env runtime.Env, from, workers int) int {
			for w, spec := range plan.Workers {
				if w != from && spec.PE == env.PE {
					return w
				}
			}
			return from
		}
	}
	// poolTarget: any other pool worker holds every pooled PE.
	poolTarget := func(env runtime.Env, from, workers int) int { return (from + 1) % workers }

	// redisFixture builds the redis chaos run over an n-shard embedded
	// cluster. recoverStale is on: duplicate acks of real entry IDs must be
	// absorbed by the transport's consumer-fenced ack path, per shard.
	redisFixture := func(shards int, items []keyedItem, eligible func(runtime.Env) bool,
		target func(env runtime.Env, from, workers int) int) fixture {
		return fixture{name: fmt.Sprintf("redis-%dshard", shards), run: func(t *testing.T, collect func(string)) *chaosTransport {
			addrs := make([]string, shards)
			for i := range addrs {
				srv, err := miniredis.StartTestServer()
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { srv.Close() })
				addrs[i] = srv.Addr()
			}
			cluster, err := redisclient.NewCluster(addrs)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cluster.Close() })
			g := keyedAggGraph(items, 0, collect)
			plan := runtime.PoolPlan(g, 3)
			keys := runtime.NewRunKeys(g.Name, 5)
			tr, err := runtime.NewRedisTransport(cluster, keys, plan, true)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { tr.Cleanup(g) })
			chaos := newChaosTransport(tr, 3, 16, false, eligible, target)
			opts := testOpts(3)
			opts.ExactlyOnceState = true
			opts.Retries = 20
			leak := &shardLeakBackend{
				Backend: state.NewRedisClusterBackend(cluster, keys.Prefix+":state"),
				t:       t, cluster: cluster, prefix: keys.Prefix + ":state",
			}
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: fmt.Sprintf("chaos-redis-%dshard", shards), Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return leak },
			}); err != nil {
				t.Fatal(err)
			}
			leak.verify()
			return chaos
		}}
	}

	fixtures := []fixture{
		{name: "chan", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 2, collect)
			plan := runtime.PinnedPlan(g, map[string]int{"gen": 1, "count": 2, "sink": 1})
			chaos := newChaosTransport(runtime.NewChanTransport(plan, 0), len(plan.Workers), 16, true, eligible, pinnedTarget(plan))
			opts := testOpts(len(plan.Workers))
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-chan", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
		{name: "queue", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 0, collect)
			plan := runtime.PoolPlan(g, 3)
			chaos := newChaosTransport(runtime.NewQueueTransport(runtime.NewQueue(0)), 3, 16, true, eligible, poolTarget)
			opts := testOpts(3)
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-queue", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
		// redis at 1, 2 and 4 shards: the same chaos must hold on the
		// single-server layout and across a sharded data plane, where the
		// duplicate flows additionally cross shard boundaries.
		redisFixture(1, items, eligible, poolTarget),
		redisFixture(2, items, eligible, poolTarget),
		redisFixture(4, items, eligible, poolTarget),
		{name: "rank", run: func(t *testing.T, collect func(string)) *chaosTransport {
			g := keyedAggGraph(items, 2, collect)
			plan := runtime.PinnedPlan(g, map[string]int{"gen": 1, "count": 2, "sink": 1})
			world, err := mpi.NewWorld(len(plan.Workers))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(world.Close)
			tr, err := runtime.NewRankTransport(world, plan)
			if err != nil {
				t.Fatal(err)
			}
			chaos := newChaosTransport(tr, len(plan.Workers), 16, true, eligible, pinnedTarget(plan))
			opts := testOpts(len(plan.Workers))
			opts.ExactlyOnceState = true
			opts.Retries = 20
			if _, err := runtime.Execute(g, opts, runtime.Config{
				Name: "chaos-rank", Plan: plan, Transport: chaos,
				Host:            platform.NewHost(opts.Platform),
				NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
			}); err != nil {
				t.Fatal(err)
			}
			return chaos
		}},
	}

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			var mu sync.Mutex
			var got []string
			chaos := fx.run(t, func(s string) {
				mu.Lock()
				got = append(got, s)
				mu.Unlock()
			})
			mu.Lock()
			sort.Strings(got)
			joined := strings.Join(got, ",")
			mu.Unlock()
			if joined != strings.Join(want, ",") {
				t.Errorf("aggregates diverge under replay:\n got %v\nwant %v", got, want)
			}
			if chaos.Issued() == 0 {
				t.Error("chaos transport injected no duplicates; the test exercised nothing")
			}
		})
	}
}
