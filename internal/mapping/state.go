package mapping

import (
	"fmt"

	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/state"
)

// ManagedState is one run's view of the state subsystem: a store per
// managed-state node, resume/checkpoint policy applied, and cleanup
// responsibility tracked. Every mapping builds one at the start of Execute
// and calls Finish when the run ends.
//
// The engine contract it supports (see package state): one namespace per
// (workflow, PE) shared by all instances, and the node's Final hook runs
// exactly once per run against that namespace.
type ManagedState struct {
	backend state.Backend
	owned   bool
	stores  map[string]state.Store
	fenced  map[string]*state.FencedStore
	nodes   []*graph.Node
	opsBase metrics.StateOps
}

// OpenManagedState opens a store for every managed-state node of g. When
// opts.StateBackend is nil, newDefault supplies a private per-run backend
// that Finish disposes of. For graphs without managed state it returns an
// inert handle (all methods are no-ops) without calling newDefault.
func OpenManagedState(g *graph.Graph, opts Options, newDefault func() state.Backend) (*ManagedState, error) {
	ms := &ManagedState{stores: map[string]state.Store{}, fenced: map[string]*state.FencedStore{}}
	ms.nodes = g.ManagedStateNodes()
	if len(ms.nodes) == 0 {
		return ms, nil
	}
	if opts.StateResume && opts.StateBackend == nil {
		// A default backend is private to this run and cannot hold a
		// previous run's checkpoints; resuming from it would silently start
		// empty and report partial aggregates as success.
		return nil, fmt.Errorf("state: Options.StateResume requires an explicit Options.StateBackend holding the previous run's state")
	}
	if opts.StateBackend != nil {
		ms.backend = opts.StateBackend
	} else {
		ms.backend = newDefault()
		ms.owned = true
	}
	ms.opsBase = ms.backend.Ops()
	for _, n := range ms.nodes {
		ns := state.Namespace(g.Name, n.Name)
		if !opts.StateResume {
			// Fresh run: leftover live state *and checkpoints* from an
			// earlier run on the same backend must not contaminate this run
			// or a later resume, so drop the whole namespace before opening.
			if err := ms.backend.DropNamespace(ns); err != nil {
				return nil, fmt.Errorf("state: reset namespace for PE %s: %w", n.Name, err)
			}
		}
		st, err := ms.backend.Open(ns)
		if err != nil {
			return nil, fmt.Errorf("state: open store for PE %s: %w", n.Name, err)
		}
		if opts.StateResume {
			// Resume from the last durable checkpoint when one exists;
			// otherwise whatever live state survived is the best available.
			if _, err := state.RestoreLatest(ms.backend, st); err != nil {
				return nil, fmt.Errorf("state: resume PE %s: %w", n.Name, err)
			}
		}
		chain := st
		if opts.StateCheckpointEvery > 0 {
			cs := state.NewCheckpointStore(st, ms.backend, opts.StateCheckpointEvery)
			if opts.Diagnosis != nil {
				nodeName := n.Name
				cs.OnCheckpoint = func() {
					opts.Diagnosis.Log(diagnosis.EvCheckpoint, -1, nodeName, "", 1)
				}
			}
			chain = cs
		}
		if opts.Telemetry != nil {
			// Instrumentation sits outside the checkpointing chain so a
			// mutation's observed latency includes any checkpoint write it
			// triggers, and inside the fence so ledger traffic is timed like
			// the data traffic it protects. The atomic fenced-increment is
			// forwarded through, so timing never degrades the fence.
			chain = state.InstrumentStore(chain, opts.Telemetry.State())
		}
		ms.stores[n.Name] = chain
		if opts.ExactlyOnceState || opts.RecoverStale {
			// Fence the namespace against duplicate task executions. The
			// fence wraps the checkpointing chain, so its applied ledger is
			// written (and checkpointed) like workflow data, while the raw
			// backend store underneath still serves the single-round-trip
			// fenced-increment fast path when no checkpointing intervenes.
			fs := state.NewFencedStore(chain)
			if opts.Telemetry != nil {
				fs.SetDropCounter(&opts.Telemetry.State().FenceDrops)
			}
			if opts.Diagnosis != nil {
				// Attribute drops to the PE whose namespace fenced them, and
				// journal each one (drops are the cold replay path).
				fs.SetDropCounter(&opts.Diagnosis.PE(n.Name).FenceDrops)
				nodeName := n.Name
				fs.SetDropNotify(func() {
					opts.Diagnosis.Log(diagnosis.EvFenceDrop, -1, nodeName, "duplicate mutation dropped", 1)
				})
			}
			ms.fenced[n.Name] = fs
		}
	}
	return ms, nil
}

// Store returns the managed store of a node, or nil when the node declared
// no managed state.
func (ms *ManagedState) Store(nodeName string) state.Store { return ms.stores[nodeName] }

// Fenced returns the node's fenced store when exactly-once fencing is on
// (Options.ExactlyOnceState, implied by RecoverStale), nil otherwise. The
// runtime binds one FenceScope per worker onto it and routes task contexts
// through the scope instead of the bare store.
func (ms *ManagedState) Fenced(nodeName string) *state.FencedStore { return ms.fenced[nodeName] }

// ExactlyOnce reports whether any namespace of this run is fenced — the
// signal for the runtime to stamp tasks with fencing identities.
func (ms *ManagedState) ExactlyOnce() bool { return len(ms.fenced) > 0 }

// Ops reports the store operations performed during this run.
func (ms *ManagedState) Ops() metrics.StateOps {
	if ms.backend == nil {
		return metrics.StateOps{}
	}
	return ms.backend.Ops().Sub(ms.opsBase)
}

// Finish releases the run's state resources. On success (or with a private
// per-run backend) every namespace is dropped; on failure against an
// external backend the namespaces — live state and checkpoints — are kept
// so a follow-up run can resume.
func (ms *ManagedState) Finish(g *graph.Graph, success bool) {
	if ms.backend == nil {
		return
	}
	if success || ms.owned {
		for _, n := range ms.nodes {
			_ = ms.backend.DropNamespace(state.Namespace(g.Name, n.Name))
		}
	}
	if ms.owned {
		_ = ms.backend.Close()
	}
}
