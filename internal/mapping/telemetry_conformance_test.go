package mapping_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/telemetry"
)

// TestTelemetryConformanceAcrossMappings is the observability contract:
// under every runtime mapping, a keyed managed aggregation run with a live
// telemetry registry must surface non-empty pull/emit-flush latency
// histograms, task counts, a transport queue-depth gauge, state-operation
// latencies, and at least one fully assembled source→sink trace — all
// without disturbing the run's results. Run under -race this also hammers
// the registry's lock-free hot path from every worker at once.
func TestTelemetryConformanceAcrossMappings(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	items := keyedAggItems(60)

	reference := func(t *testing.T) []string {
		var got []string
		g := keyedAggGraph(items, 1, func(s string) { got = append(got, s) })
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, testOpts(1)); err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		return got
	}
	want := reference(t)

	for _, tc := range []struct {
		name  string
		procs int
	}{
		{"multi", 6},
		{"mpi", 6},
		{"dyn_multi", 4},
		{"dyn_auto_multi", 4},
		{"dyn_redis", 4},
		{"dyn_auto_redis", 4},
		{"hybrid_redis", 5},
		{"hybrid_auto_redis", 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			var got []string
			g := keyedAggGraph(items, 3, func(s string) {
				mu.Lock()
				got = append(got, s)
				mu.Unlock()
			})
			m, err := mapping.Get(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.New(telemetry.Config{TraceSampleEvery: 1})
			opts := testOpts(tc.procs)
			opts.Telemetry = reg
			if strings.Contains(tc.name, "redis") {
				opts.RedisAddr = srv.Addr()
			}
			if _, err := m.Execute(g, opts); err != nil {
				t.Fatal(err)
			}

			mu.Lock()
			sort.Strings(got)
			mu.Unlock()
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("instrumented run diverged:\n got %v\nwant %v", got, want)
			}

			snap := reg.Snapshot()
			if snap.Workers.Pull.Count == 0 {
				t.Error("pull histogram empty")
			}
			if snap.Workers.EmitFlush.Count == 0 {
				t.Error("emit-flush histogram empty")
			}
			if snap.Workers.Ack.Count == 0 {
				t.Error("ack histogram empty")
			}
			if snap.Workers.Tasks == 0 {
				t.Error("task counter zero")
			}
			if snap.Workers.Pull.Count > 0 && snap.Workers.Pull.P99 < snap.Workers.Pull.P50 {
				t.Errorf("pull p99 %d < p50 %d", snap.Workers.Pull.P99, snap.Workers.Pull.P50)
			}
			if _, ok := snap.Gauges["transport.pending"]; !ok {
				t.Errorf("transport.pending gauge missing: %v", snap.Gauges)
			}
			if snap.State == nil || len(snap.State.Ops) == 0 {
				t.Error("state-operation latencies missing")
			} else if _, ok := snap.State.Ops["add"]; !ok {
				t.Errorf("keyed AddInt left no add histogram: %v", snap.State.Ops)
			}
			if len(snap.PerWorker) == 0 {
				t.Error("no per-worker shards")
			}
			complete := 0
			for _, tr := range snap.Traces {
				if tr.Complete {
					complete++
					if len(tr.Hops) < 2 {
						t.Errorf("complete trace with %d hops", len(tr.Hops))
					}
				}
			}
			if complete == 0 {
				t.Errorf("no complete trace among %d assembled (events=%d)",
					len(snap.Traces), snap.TraceEvents)
			}
		})
	}
}
