package mapping_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	_ "repro/internal/dynamic" // register dyn_multi, dyn_auto_multi
	"repro/internal/graph"
	"repro/internal/mapping"
	_ "repro/internal/multiproc" // register multi
	"repro/internal/platform"
	"repro/internal/runtime"
)

// sumCollector accumulates sink deliveries across instances/workers.
type sumCollector struct {
	mu    sync.Mutex
	sum   int64
	count int64
}

func (c *sumCollector) add(v int64) {
	c.mu.Lock()
	c.sum += v
	c.count++
	c.mu.Unlock()
}

// pipelineGraph builds gen(1..n) → square → sum with per-item service time.
func pipelineGraph(n int, work time.Duration, col *sumCollector) *graph.Graph {
	g := graph.New("pipeline")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("square", func(ctx *core.Context, v any) (any, error) {
			ctx.Work(work)
			x := v.(int)
			return x * x, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sum", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "square")
	g.Pipe("square", "sum")
	return g
}

// wantSquareSum is sum of squares 1..n.
func wantSquareSum(n int) int64 {
	var s int64
	for i := 1; i <= n; i++ {
		s += int64(i * i)
	}
	return s
}

func testOpts(procs int) mapping.Options {
	return mapping.Options{
		Processes: procs,
		Platform:  platform.Platform{Name: "test", Cores: 4, QueueOpCost: 0},
		Seed:      42,
	}
}

func TestMappingsAgreeOnPipeline(t *testing.T) {
	const n = 40
	want := wantSquareSum(n)
	for _, name := range []string{"simple", "multi", "dyn_multi", "dyn_auto_multi"} {
		t.Run(name, func(t *testing.T) {
			m, err := mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			col := &sumCollector{}
			g := pipelineGraph(n, 0, col)
			rep, err := m.Execute(g, testOpts(4))
			if err != nil {
				t.Fatal(err)
			}
			if col.sum != want || col.count != n {
				t.Errorf("sum=%d count=%d want sum=%d count=%d", col.sum, col.count, want, n)
			}
			if rep.Tasks == 0 {
				t.Error("no tasks recorded")
			}
			if rep.Outputs != n {
				t.Errorf("outputs=%d want %d", rep.Outputs, n)
			}
			if rep.Runtime <= 0 || rep.ProcessTime <= 0 {
				t.Errorf("metrics: %+v", rep)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, err := mapping.Get("nope"); err == nil {
		t.Error("unknown mapping should error")
	}
	names := mapping.Names()
	for _, want := range []string{"simple", "multi", "dyn_multi", "dyn_auto_multi"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
}

func TestMultiRespectsGroupBy(t *testing.T) {
	// Keyed values must land on a consistent instance: a stateful counter
	// per instance, grouped by key, must see each key on exactly one
	// instance.
	type keyed struct {
		Key string
		Val int
	}
	var mu sync.Mutex
	perInstanceKeys := map[int]map[string]bool{}

	g := graph.New("grouped")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			keys := []string{"a", "b", "c", "d", "e"}
			for i := 0; i < 50; i++ {
				if err := ctx.EmitDefault(keyed{Key: keys[i%len(keys)], Val: i}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("agg", func(ctx *core.Context, v any) error {
			mu.Lock()
			defer mu.Unlock()
			m, ok := perInstanceKeys[ctx.Instance()]
			if !ok {
				m = map[string]bool{}
				perInstanceKeys[ctx.Instance()] = m
			}
			m[v.(keyed).Key] = true
			return nil
		})
	}).SetInstances(3).SetStateful(true)
	g.Pipe("gen", "agg").SetGrouping(graph.GroupByKey(func(v any) string { return v.(keyed).Key }))

	m, err := mapping.Get("multi")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute(g, testOpts(4)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, keys := range perInstanceKeys {
		for k := range keys {
			seen[k]++
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %q seen on %d instances, want exactly 1", k, n)
		}
	}
	if len(seen) != 5 {
		t.Errorf("keys seen: %v", seen)
	}
}

func TestMultiGlobalGroupingSingleInstance(t *testing.T) {
	var instances sync.Map
	g := graph.New("global")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 20; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("one", func(ctx *core.Context, v any) error {
			instances.Store(ctx.Instance(), true)
			return nil
		})
	}).SetInstances(3).SetStateful(true)
	g.Pipe("gen", "one").SetGrouping(graph.GlobalGrouping())

	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, testOpts(4)); err != nil {
		t.Fatal(err)
	}
	var count int
	instances.Range(func(k, v any) bool { count++; return true })
	if count != 1 {
		t.Errorf("global grouping hit %d instances, want 1", count)
	}
}

func TestMultiOneToAllBroadcast(t *testing.T) {
	var got atomic.Int64
	g := graph.New("broadcast")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 10; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("all", func(ctx *core.Context, v any) error {
			got.Add(1)
			return nil
		})
	}).SetInstances(3).SetStateful(true)
	g.Pipe("gen", "all").SetGrouping(graph.OneToAllGrouping())

	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, testOpts(4)); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 30 {
		t.Errorf("broadcast deliveries=%d want 30 (10 values × 3 instances)", got.Load())
	}
}

func TestMultiFinalizersFlush(t *testing.T) {
	// A stateful counting PE with Final emitting its count into a sink.
	var mu sync.Mutex
	var finals []int

	g := graph.New("finals")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 30; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE { return newCountPE() }).SetInstances(2).SetStateful(true)
	g.Add(func() core.PE {
		return core.NewSink("collect", func(ctx *core.Context, v any) error {
			mu.Lock()
			finals = append(finals, v.(int))
			mu.Unlock()
			return nil
		})
	})
	g.Pipe("gen", "count")
	g.Pipe("count", "collect")

	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, testOpts(4)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(finals) != 2 {
		t.Fatalf("finals: %v (want one per instance)", finals)
	}
	if finals[0]+finals[1] != 30 {
		t.Errorf("final counts %v should sum to 30", finals)
	}
}

// countPE counts inputs and emits the count at Final.
type countPE struct {
	core.Base
	n int
}

func newCountPE() *countPE {
	return &countPE{Base: core.NewBase("count", core.In(), core.Out())}
}

func (p *countPE) Process(ctx *core.Context, port string, v any) error {
	p.n++
	return nil
}

func (p *countPE) Final(ctx *core.Context) error {
	return ctx.EmitDefault(p.n)
}

func TestMultiInsufficientProcesses(t *testing.T) {
	col := &sumCollector{}
	g := pipelineGraph(5, 0, col)
	g.Node("square").SetInstances(10)
	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, testOpts(3)); err == nil {
		t.Fatal("expected insufficient-processes error")
	}
}

func TestDynamicRejectsStatefulAndGroupings(t *testing.T) {
	col := &sumCollector{}
	for _, name := range []string{"dyn_multi", "dyn_auto_multi"} {
		m, _ := mapping.Get(name)
		g := pipelineGraph(5, 0, col)
		g.Node("square").SetStateful(true)
		if _, err := m.Execute(g, testOpts(2)); err == nil || !strings.Contains(err.Error(), "stateful") {
			t.Errorf("%s: want stateful rejection, got %v", name, err)
		}
		g2 := pipelineGraph(5, 0, col)
		g2.OutEdges("gen")[0].SetGrouping(graph.GlobalGrouping())
		if _, err := m.Execute(g2, testOpts(2)); err == nil || !strings.Contains(err.Error(), "grouping") {
			t.Errorf("%s: want grouping rejection, got %v", name, err)
		}
	}
}

func TestDynamicErrorPropagates(t *testing.T) {
	g := graph.New("failing")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 10; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("boom", func(ctx *core.Context, v any) error {
			if v.(int) == 7 {
				return errBoom
			}
			return nil
		})
	})
	g.Pipe("gen", "boom")
	m, _ := mapping.Get("dyn_multi")
	_, err := m.Execute(g, testOpts(3))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error not propagated: %v", err)
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom at 7" }

func TestMultiErrorPropagates(t *testing.T) {
	g := graph.New("failing")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			return ctx.EmitDefault(1)
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("boom", func(ctx *core.Context, v any) error { return errBoom })
	})
	g.Pipe("gen", "boom")
	m, _ := mapping.Get("multi")
	if _, err := m.Execute(g, testOpts(4)); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestDynAutoTraceRecordsActivity(t *testing.T) {
	col := &sumCollector{}
	g := pipelineGraph(60, 2*time.Millisecond, col)
	trace := &autoscale.Trace{}
	opts := testOpts(6)
	opts.Trace = trace
	m, _ := mapping.Get("dyn_auto_multi")
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	pts := trace.Points()
	if len(pts) == 0 {
		t.Fatal("auto-scaler recorded no trace points")
	}
	for _, p := range pts {
		if p.Active < 1 || p.Active > 6 {
			t.Errorf("active size out of bounds: %+v", p)
		}
	}
}

func TestDynAutoUsesFewerProcessTimeThanDyn(t *testing.T) {
	// With a tiny trickle of work and many processes, auto-scaling should
	// accrue less total process time than the full always-active pool.
	run := func(name string) time.Duration {
		col := &sumCollector{}
		g := pipelineGraph(30, 3*time.Millisecond, col)
		m, err := mapping.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := testOpts(8)
		opts.Seed = 7
		rep, err := m.Execute(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ProcessTime
	}
	dyn := run("dyn_multi")
	auto := run("dyn_auto_multi")
	if auto >= dyn {
		t.Errorf("dyn_auto_multi process time %v not below dyn_multi %v", auto, dyn)
	}
}

func TestQueueOpsAndLen(t *testing.T) {
	q := runtime.NewQueue(0)
	q.Push(runtime.Task{PE: "a"})
	q.Push(runtime.Task{PE: "b"})
	if q.Len() != 2 {
		t.Errorf("len=%d", q.Len())
	}
	tsk, ok := q.Pop(time.Millisecond)
	if !ok || tsk.PE != "a" {
		t.Errorf("pop: %+v %v", tsk, ok)
	}
	if _, ok := q.Pop(time.Millisecond); !ok {
		t.Error("second pop should succeed")
	}
	start := time.Now()
	if _, ok := q.Pop(20 * time.Millisecond); ok {
		t.Error("empty pop should time out")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("pop returned before timeout")
	}
	pushes, pops := q.Ops()
	if pushes != 2 || pops != 2 {
		t.Errorf("ops: %d %d", pushes, pops)
	}
}

func TestSimpleDeterministicOutputs(t *testing.T) {
	run := func() int64 {
		col := &sumCollector{}
		g := pipelineGraph(25, 0, col)
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, testOpts(1)); err != nil {
			t.Fatal(err)
		}
		return col.sum
	}
	if run() != run() {
		t.Error("simple mapping not deterministic")
	}
}
