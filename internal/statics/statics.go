// Package statics implements the two *static* optimizations the paper
// recounts from its prior work (Section 2.2): staging and naive assignment.
// Both are abstract-workflow → abstract-workflow transforms applied before
// mapping, so they compose with every enactment engine:
//
//   - Staging "clusters operations that do not require data shuffling based
//     on the abstract workflow": maximal linear chains of stateless PEs
//     connected 1:1 with the default shuffle grouping are fused into one
//     composite PE, eliminating the queue/channel hop between them.
//
//   - NaiveAssignment "consolidates all interconnected PEs whose
//     communication times surpass their execution times by analyzing
//     execution logs": given a Profile of measured per-unit execution and
//     communication costs, an edge is fused when shipping a data unit costs
//     more than processing it at the destination.
package statics

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Profile is the execution-log summary naive assignment consumes: average
// per-data-unit execution time per PE and communication time per edge.
type Profile struct {
	// Exec maps PE name → average per-unit processing time.
	Exec map[string]time.Duration
	// Comm maps "from→to" edge key → average per-unit transfer time.
	Comm map[string]time.Duration
}

// EdgeKey builds the Comm map key for an edge.
func EdgeKey(from, to string) string { return from + "→" + to }

// Staging fuses every maximal fusible chain in g and returns the optimized
// graph. The input graph is not modified.
func Staging(g *graph.Graph) (*graph.Graph, error) {
	return fuse(g, func(e *graph.Edge) bool { return true })
}

// NaiveAssignment fuses fusible edges whose logged communication time
// exceeds the destination PE's execution time.
func NaiveAssignment(g *graph.Graph, p Profile) (*graph.Graph, error) {
	return fuse(g, func(e *graph.Edge) bool {
		comm, okC := p.Comm[EdgeKey(e.From, e.To)]
		exec, okE := p.Exec[e.To]
		return okC && okE && comm > exec
	})
}

// fusibleEdge reports whether an edge may be fused at all: 1:1 linear
// connection with shuffle grouping between stateless PEs using the default
// ports. Edges out of a source never fuse — a source generates the whole
// stream from one instance, so pulling downstream PEs into it would
// serialize the entire workflow instead of saving a queue hop per unit.
func fusibleEdge(g *graph.Graph, e *graph.Edge) bool {
	if e.Grouping.Kind != graph.Shuffle {
		return false
	}
	if len(g.OutEdges(e.From)) != 1 || len(g.InEdges(e.To)) != 1 {
		return false
	}
	from, to := g.Node(e.From), g.Node(e.To)
	if from.IsSource() {
		return false
	}
	if from.Stateful || to.Stateful {
		return false
	}
	// Explicit instance pinning signals the user wants separate processes.
	if from.Instances > 0 && to.Instances > 0 && from.Instances != to.Instances {
		return false
	}
	return true
}

// fuse rewrites g, merging every fusible edge accepted by want into
// composite PEs.
func fuse(g *graph.Graph, want func(e *graph.Edge) bool) (*graph.Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Union chains via a next/prev map over accepted edges.
	next := map[string]string{}
	prev := map[string]string{}
	for _, e := range g.Edges() {
		if fusibleEdge(g, e) && want(e) {
			next[e.From] = e.To
			prev[e.To] = e.From
		}
	}
	// Build chains: start at nodes with no fused predecessor.
	chainOf := map[string][]string{} // head → member names
	headOf := map[string]string{}    // member → head
	for _, n := range g.Nodes() {
		if _, hasPrev := prev[n.Name]; hasPrev {
			continue
		}
		chain := []string{n.Name}
		for cur := n.Name; ; {
			nx, ok := next[cur]
			if !ok {
				break
			}
			chain = append(chain, nx)
			cur = nx
		}
		chainOf[n.Name] = chain
		for _, m := range chain {
			headOf[m] = n.Name
		}
	}

	out := graph.New(g.Name)
	newName := map[string]string{} // original node → new node name
	for _, n := range g.Nodes() {
		head, ok := headOf[n.Name]
		if !ok || head != n.Name {
			continue // not a chain head; emitted as part of its chain
		}
		chain := chainOf[head]
		if len(chain) == 1 {
			orig := g.Node(head)
			node := out.Add(orig.Factory)
			node.Instances = orig.Instances
			node.Stateful = orig.Stateful
			newName[head] = head
			continue
		}
		members := make([]*graph.Node, len(chain))
		for i, m := range chain {
			members[i] = g.Node(m)
		}
		fusedName := strings.Join(chain, "+")
		node := out.Add(newFusedFactory(fusedName, members))
		// Inherit the strictest explicit instance request in the chain.
		for _, m := range members {
			if m.Instances > 0 && (node.Instances == 0 || m.Instances < node.Instances) {
				node.Instances = m.Instances
			}
		}
		for _, m := range chain {
			newName[m] = fusedName
		}
	}
	// Rewire surviving edges.
	for _, e := range g.Edges() {
		if headOf[e.To] == headOf[e.From] && headOf[e.From] != "" && newName[e.From] == newName[e.To] {
			continue // internal to a fused chain
		}
		ne := out.Connect(newName[e.From], e.FromPort, newName[e.To], e.ToPort)
		ne.Grouping = e.Grouping
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("statics: fused graph invalid: %w", err)
	}
	return out, nil
}

// newFusedFactory builds a factory for the composite PE executing a linear
// chain of member PEs synchronously. The composite exposes the chain head's
// input ports and the chain tail's output ports.
func newFusedFactory(name string, members []*graph.Node) func() core.PE {
	return func() core.PE {
		stages := make([]core.PE, len(members))
		for i, m := range members {
			stages[i] = m.Factory()
		}
		head, tail := stages[0], stages[len(stages)-1]
		return &fusedPE{
			Base:   core.NewBase(name, head.InPorts(), tail.OutPorts()),
			stages: stages,
		}
	}
}

// fusedPE runs a chain of PEs in one Process call. Intermediate emissions
// flow synchronously to the next stage; the tail's emissions leave through
// the composite's context.
type fusedPE struct {
	core.Base
	stages []core.PE
}

// stageContext builds the per-stage context chain: stage i emits into stage
// i+1's Process; the last stage emits through outer.
func (f *fusedPE) stageContexts(outer *core.Context) []*core.Context {
	ctxs := make([]*core.Context, len(f.stages))
	for i := len(f.stages) - 1; i >= 0; i-- {
		i := i
		if i == len(f.stages)-1 {
			// The tail emits through the composite's own context, keeping
			// the outer host and routing.
			ctxs[i] = outer.WithPE(f.stages[i].Name())
			continue
		}
		nextPE := f.stages[i+1]
		nextCtx := func() *core.Context { return ctxs[i+1] }
		ctxs[i] = outer.WithEmit(f.stages[i].Name(), func(port string, value any) error {
			in := nextPE.InPorts()
			target := core.PortIn
			if len(in) == 1 {
				target = in[0]
			}
			return nextPE.Process(nextCtx(), target, value)
		})
	}
	return ctxs
}

// Process implements core.PE.
func (f *fusedPE) Process(ctx *core.Context, port string, value any) error {
	ctxs := f.stageContexts(ctx)
	return f.stages[0].Process(ctxs[0], port, value)
}

// Init implements core.Initializer, initializing every stage.
func (f *fusedPE) Init(ctx *core.Context) error {
	ctxs := f.stageContexts(ctx)
	for i, s := range f.stages {
		if ini, ok := s.(core.Initializer); ok {
			if err := ini.Init(ctxs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ core.PE = (*fusedPE)(nil)
