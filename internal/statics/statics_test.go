package statics_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	"repro/internal/statics"
)

type collector struct {
	mu  sync.Mutex
	got []int
}

func (c *collector) add(v int) {
	c.mu.Lock()
	c.got = append(c.got, v)
	c.mu.Unlock()
}

// chainGraph builds gen → inc → double → sink (all fusible).
func chainGraph(n int, col *collector) *graph.Graph {
	g := graph.New("chain")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("inc", func(ctx *core.Context, v any) (any, error) { return v.(int) + 1, nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("double", func(ctx *core.Context, v any) (any, error) { return v.(int) * 2, nil })
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			col.add(v.(int))
			return nil
		})
	})
	g.Pipe("gen", "inc")
	g.Pipe("inc", "double")
	g.Pipe("double", "sink")
	return g
}

func TestStagingFusesLinearChain(t *testing.T) {
	col := &collector{}
	g := chainGraph(10, col)
	fused, err := statics.Staging(g)
	if err != nil {
		t.Fatal(err)
	}
	// The source stays separate (fusing it would serialize the stream);
	// the downstream chain fuses into one composite.
	if got := len(fused.Nodes()); got != 2 {
		names := []string{}
		for _, n := range fused.Nodes() {
			names = append(names, n.Name)
		}
		t.Fatalf("fused graph has %d nodes (%v), want 2", got, names)
	}
	if fused.Node("gen") == nil || fused.Node("inc+double+sink") == nil {
		names := []string{}
		for _, n := range fused.Nodes() {
			names = append(names, n.Name)
		}
		t.Errorf("fused names: %v", names)
	}
}

func TestFusedChainSemanticsMatchOriginal(t *testing.T) {
	runGraph := func(g *graph.Graph) []int {
		m, _ := mapping.Get("simple")
		if _, err := m.Execute(g, mapping.Options{Processes: 1, Platform: platform.Server, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return nil
	}
	colA := &collector{}
	ga := chainGraph(20, colA)
	runGraph(ga)

	colB := &collector{}
	gb, err := statics.Staging(chainGraph(20, colB))
	if err != nil {
		t.Fatal(err)
	}
	runGraph(gb)

	if len(colA.got) != len(colB.got) {
		t.Fatalf("lengths differ: %d vs %d", len(colA.got), len(colB.got))
	}
	for i := range colA.got {
		if colA.got[i] != colB.got[i] {
			t.Fatalf("value %d differs: %d vs %d", i, colA.got[i], colB.got[i])
		}
	}
}

func TestStagingStopsAtFanOut(t *testing.T) {
	col := &collector{}
	g := chainGraph(5, col)
	// Add a second consumer of inc's output: inc now has fan-out 2, so
	// gen+inc can no longer fuse with double.
	g.Add(func() core.PE {
		return core.NewSink("tap", func(ctx *core.Context, v any) error { return nil })
	})
	g.Pipe("inc", "tap")
	fused, err := statics.Staging(g)
	if err != nil {
		t.Fatal(err)
	}
	// gen stays (source); inc has fan-out 2 so it stands alone; double+sink
	// fuse; tap stands alone.
	if got := len(fused.Nodes()); got != 4 {
		names := []string{}
		for _, n := range fused.Nodes() {
			names = append(names, n.Name)
		}
		t.Fatalf("nodes: %v want 4", names)
	}
	if fused.Node("double+sink") == nil {
		t.Error("double+sink should fuse")
	}
}

func TestStagingRespectsStatefulAndGroupings(t *testing.T) {
	col := &collector{}
	g := chainGraph(5, col)
	g.Node("double").SetStateful(true)
	fused, err := statics.Staging(g)
	if err != nil {
		t.Fatal(err)
	}
	// gen (source) alone; inc cannot fuse into stateful double; double
	// alone; sink cannot fuse with a stateful predecessor.
	if got := len(fused.Nodes()); got != 4 {
		t.Fatalf("%d nodes, want 4", got)
	}
	if fused.Node("double") == nil || !fused.Node("double").Stateful {
		t.Error("stateful node lost its marker")
	}

	g2 := chainGraph(5, col)
	g2.OutEdges("inc")[0].SetGrouping(graph.GlobalGrouping())
	fused2, err := statics.Staging(g2)
	if err != nil {
		t.Fatal(err)
	}
	// The grouped edge inc→double must survive.
	found := false
	for _, e := range fused2.Edges() {
		if e.Grouping.Kind == graph.Global {
			found = true
		}
	}
	if !found {
		t.Error("grouped edge lost in fusion")
	}
}

func TestNaiveAssignmentUsesProfile(t *testing.T) {
	col := &collector{}
	g := chainGraph(5, col)
	profile := statics.Profile{
		Exec: map[string]time.Duration{
			"inc":    10 * time.Millisecond,
			"double": time.Millisecond,
			"sink":   10 * time.Millisecond,
		},
		Comm: map[string]time.Duration{
			statics.EdgeKey("gen", "inc"):     time.Millisecond,     // comm < exec: keep
			statics.EdgeKey("inc", "double"):  5 * time.Millisecond, // comm > exec: fuse
			statics.EdgeKey("double", "sink"): time.Millisecond,     // comm < exec: keep
		},
	}
	fused, err := statics.NaiveAssignment(g, profile)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Node("inc+double") == nil {
		names := []string{}
		for _, n := range fused.Nodes() {
			names = append(names, n.Name)
		}
		t.Fatalf("expected inc+double fusion, got %v", names)
	}
	if got := len(fused.Nodes()); got != 3 {
		t.Errorf("%d nodes, want 3 (gen, inc+double, sink)", got)
	}
}

func TestFusedGraphRunsUnderMulti(t *testing.T) {
	col := &collector{}
	fused, err := statics.Staging(chainGraph(15, col))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mapping.Get("multi")
	rep, err := m.Execute(fused, mapping.Options{
		Processes: 2, Platform: platform.Platform{Name: "test", Cores: 2}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	col.mu.Lock()
	n := len(col.got)
	col.mu.Unlock()
	if n != 15 {
		t.Errorf("sink saw %d values, want 15", n)
	}
	if rep.Tasks == 0 {
		t.Error("no tasks recorded")
	}
}

func TestFusedChainKeepsWorkSemantics(t *testing.T) {
	// A fused chain must still model service time through the outer host:
	// runtime of the fused graph must reflect the inner Work calls.
	g := graph.New("workchain")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 4; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("mid", func(ctx *core.Context, v any) (any, error) {
			ctx.Work(5 * time.Millisecond)
			return v, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("slow", func(ctx *core.Context, v any) error {
			ctx.Work(5 * time.Millisecond)
			return nil
		})
	})
	g.Pipe("gen", "mid")
	g.Pipe("mid", "slow")
	fused, err := statics.Staging(g)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Node("mid+slow") == nil {
		t.Fatal("mid+slow should fuse")
	}
	m, _ := mapping.Get("simple")
	rep, err := m.Execute(fused, mapping.Options{Processes: 1, Platform: platform.Server})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime < 30*time.Millisecond {
		t.Errorf("runtime %v does not reflect 4×10ms of fused work", rep.Runtime)
	}
}
