package statics_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/statics"
)

// profGraph builds gen → slow → fast with distinguishable exec times.
func profGraph() *graph.Graph {
	g := graph.New("prof")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 5; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("slow", func(ctx *core.Context, v any) (any, error) {
			time.Sleep(4 * time.Millisecond)
			return v, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("fast", func(ctx *core.Context, v any) error {
			return nil
		})
	})
	g.Pipe("gen", "slow")
	g.Pipe("slow", "fast")
	return g
}

func TestMeasureProfileExecTimes(t *testing.T) {
	prof, err := statics.MeasureProfile(profGraph(), statics.DefaultCommModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Exec["slow"] < 3*time.Millisecond {
		t.Errorf("slow exec %v, want ≥ ~4ms", prof.Exec["slow"])
	}
	if prof.Exec["fast"] >= prof.Exec["slow"] {
		t.Errorf("fast (%v) should be cheaper than slow (%v)", prof.Exec["fast"], prof.Exec["slow"])
	}
	for _, key := range []string{statics.EdgeKey("gen", "slow"), statics.EdgeKey("slow", "fast")} {
		if prof.Comm[key] <= 0 {
			t.Errorf("comm[%s] missing", key)
		}
	}
}

func TestMeasureProfileDrivesNaiveAssignment(t *testing.T) {
	// With measured times, the edge into the cheap sink has comm > exec
	// (sink does nothing), so naive assignment fuses slow+fast but keeps
	// gen→slow separate (slow's exec dwarfs comm).
	prof, err := statics.MeasureProfile(profGraph(), statics.DefaultCommModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := statics.NaiveAssignment(profGraph(), prof)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Node("slow+fast") == nil {
		names := []string{}
		for _, n := range fused.Nodes() {
			names = append(names, n.Name)
		}
		t.Fatalf("expected slow+fast fusion from measured profile, got %v", names)
	}
	if fused.Node("gen") == nil {
		t.Error("gen should stay separate (comm < slow's exec)")
	}
}

func TestMeasureProfileRejectsInvalidGraph(t *testing.T) {
	g := graph.New("empty")
	if _, err := statics.MeasureProfile(g, statics.DefaultCommModel(), 1); err == nil {
		t.Error("empty graph must fail")
	}
}
