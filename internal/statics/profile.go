package statics

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/synth"
)

// CommModel estimates per-data-unit communication cost for the profile
// measurement ("analyzing execution logs" requires a cost for shipping a
// unit between processes).
type CommModel struct {
	// Fixed is the per-message cost (queue op, syscall).
	Fixed time.Duration
	// PerByte is the serialization/transfer cost per payload byte.
	PerByte time.Duration
}

// DefaultCommModel approximates an in-host multiprocessing queue.
func DefaultCommModel() CommModel {
	return CommModel{Fixed: 50 * time.Microsecond, PerByte: 5 * time.Nanosecond}
}

// MeasureProfile executes the workflow once, sequentially, timing every
// PE's Process/Generate calls and estimating per-edge communication cost
// from serialized payload sizes. The result feeds NaiveAssignment — this is
// the "execution log analysis" step of the prior-work static optimization,
// packaged as a library call.
func MeasureProfile(g *graph.Graph, model CommModel, seed int64) (Profile, error) {
	if err := g.Validate(); err != nil {
		return Profile{}, err
	}
	prof := Profile{
		Exec: map[string]time.Duration{},
		Comm: map[string]time.Duration{},
	}
	execTotal := map[string]time.Duration{}
	execCount := map[string]int{}
	commTotal := map[string]time.Duration{}
	commCount := map[string]int{}

	pes := make(map[string]core.PE, len(g.Nodes()))
	ctxs := make(map[string]*core.Context, len(g.Nodes()))
	for _, n := range g.Nodes() {
		pes[n.Name] = n.Factory()
	}

	var route func(src, port string, value any) error
	for _, n := range g.Nodes() {
		n := n
		ctxs[n.Name] = core.NewContext(n.Name, 0, nil, synth.NewRand(seed),
			func(port string, value any) error { return route(n.Name, port, value) })
	}
	route = func(src, port string, value any) error {
		for _, e := range g.OutEdges(src) {
			if e.FromPort != port {
				continue
			}
			key := EdgeKey(e.From, e.To)
			commTotal[key] += commCost(model, value)
			commCount[key]++
			start := time.Now()
			err := pes[e.To].Process(ctxs[e.To], e.ToPort, value)
			execTotal[e.To] += time.Since(start)
			execCount[e.To]++
			if err != nil {
				return fmt.Errorf("statics: profile %s: %w", e.To, err)
			}
		}
		return nil
	}

	for _, n := range g.Sources() {
		src, ok := pes[n.Name].(core.Source)
		if !ok {
			return Profile{}, fmt.Errorf("statics: %s is not a source", n.Name)
		}
		start := time.Now()
		err := src.Generate(ctxs[n.Name])
		execTotal[n.Name] += time.Since(start)
		execCount[n.Name]++
		if err != nil {
			return Profile{}, fmt.Errorf("statics: profile source %s: %w", n.Name, err)
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		return Profile{}, err
	}
	for _, name := range order {
		if fin, ok := pes[name].(core.Finalizer); ok {
			start := time.Now()
			err := fin.Final(ctxs[name])
			execTotal[name] += time.Since(start)
			if err != nil {
				return Profile{}, fmt.Errorf("statics: profile final %s: %w", name, err)
			}
		}
	}

	for name, total := range execTotal {
		n := execCount[name]
		if n == 0 {
			n = 1
		}
		prof.Exec[name] = total / time.Duration(n)
	}
	for key, total := range commTotal {
		prof.Comm[key] = total / time.Duration(commCount[key])
	}
	return prof, nil
}

// commCost estimates shipping one value. Values that do not gob-encode
// (unregistered concrete types are fine for in-process mappings) fall back
// to the fixed cost.
func commCost(model CommModel, value any) time.Duration {
	cost := model.Fixed
	if model.PerByte > 0 {
		if payload, err := codec.Encode(codec.Task{Value: value}); err == nil {
			cost += time.Duration(len(payload)) * model.PerByte
		}
	}
	return cost
}
