// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation at a reduced (quick) scale suitable for `go test
// -bench=.`, plus ablation benches for the design choices DESIGN.md calls
// out. The paper-scale regeneration lives in cmd/d4pbench; these benches
// exist so `go test -bench=. -benchmem ./...` exercises the complete
// experiment matrix end to end and reports the headline metrics.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diagnosis"
	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/state"
	"repro/internal/statics"
	"repro/internal/telemetry"
	"repro/internal/workflows/galaxy"
	"repro/internal/workflows/sentiment"
)

// benchScale shrinks further than QuickScale for per-iteration cost.
func benchScale() harness.Scale {
	s := harness.QuickScale()
	return s
}

// runPanels executes experiments and reports the pooled ratio table when a
// pair is given.
func runPanels(b *testing.B, exps []harness.Experiment, pair *harness.TablePair) {
	b.Helper()
	r := &harness.Runner{}
	defer r.Close()
	for i := 0; i < b.N; i++ {
		var panels [][]metrics.Series
		for _, e := range exps {
			series, err := r.RunExperiment(e)
			if err != nil {
				b.Fatal(err)
			}
			panels = append(panels, series)
		}
		if pair != nil {
			tables := harness.BuildTables(exps[0].Platform.Name, []harness.TablePair{*pair}, panels)
			if len(tables) == 1 {
				b.ReportMetric(tables[0].RuntimeMean, "rt-ratio-mean")
				b.ReportMetric(tables[0].ProcessTimeMean, "pt-ratio-mean")
			}
		}
	}
}

// BenchmarkFig08GalaxyServer regenerates Figure 8 (galaxy on the 16-core
// server, all six techniques).
func BenchmarkFig08GalaxyServer(b *testing.B) {
	runPanels(b, harness.Fig8(benchScale())[:1], nil)
}

// BenchmarkFig09GalaxyCloud regenerates Figure 9 (galaxy on the 8-core
// cloud).
func BenchmarkFig09GalaxyCloud(b *testing.B) {
	runPanels(b, harness.Fig9(benchScale())[:1], nil)
}

// BenchmarkFig10GalaxyHPC regenerates Figure 10 (galaxy on the 64-core HPC,
// multi family only).
func BenchmarkFig10GalaxyHPC(b *testing.B) {
	runPanels(b, harness.Fig10(benchScale())[:1], nil)
}

// BenchmarkFig11SeismicServer regenerates Figure 11a (seismic on server).
func BenchmarkFig11SeismicServer(b *testing.B) {
	runPanels(b, harness.Fig11(benchScale())[:1], nil)
}

// BenchmarkFig11SeismicCloud regenerates Figure 11b (seismic on cloud).
func BenchmarkFig11SeismicCloud(b *testing.B) {
	runPanels(b, harness.Fig11(benchScale())[1:2], nil)
}

// BenchmarkFig11SeismicHPC regenerates Figure 11c (seismic on HPC).
func BenchmarkFig11SeismicHPC(b *testing.B) {
	runPanels(b, harness.Fig11(benchScale())[2:], nil)
}

// BenchmarkFig12SentimentServer regenerates Figure 12a (stateful sentiment,
// multi vs hybrid_redis on server) and reports the hybrid/multi ratios
// (Table 3's content).
func BenchmarkFig12SentimentServer(b *testing.B) {
	pair := harness.Table3Pairs[0]
	runPanels(b, harness.Fig12(benchScale())[:1], &pair)
}

// BenchmarkFig12SentimentCloud regenerates Figure 12b (cloud).
func BenchmarkFig12SentimentCloud(b *testing.B) {
	pair := harness.Table3Pairs[0]
	runPanels(b, harness.Fig12(benchScale())[1:], &pair)
}

// BenchmarkFig13Traces regenerates the Figure 13 auto-scaler traces.
func BenchmarkFig13Traces(b *testing.B) {
	r := &harness.Runner{}
	defer r.Close()
	exps := harness.Fig13(benchScale())
	for i := 0; i < b.N; i++ {
		var points int
		for _, e := range exps {
			trace, _, err := r.RunTrace(e)
			if err != nil {
				b.Fatal(err)
			}
			points += len(trace.Points())
		}
		b.ReportMetric(float64(points), "trace-points")
	}
}

// BenchmarkTable1GalaxyRatios computes Table 1 (auto-scaling vs dynamic
// scheduling on the galaxy workflow, server platform).
func BenchmarkTable1GalaxyRatios(b *testing.B) {
	pair := harness.Table1Pairs[0]
	runPanels(b, harness.Fig8(benchScale())[:1], &pair)
}

// BenchmarkTable2SeismicRatios computes Table 2 (the same comparisons on
// the seismic workflow).
func BenchmarkTable2SeismicRatios(b *testing.B) {
	pair := harness.Table1Pairs[0]
	runPanels(b, harness.Fig11(benchScale())[:1], &pair)
}

// BenchmarkTable3SentimentRatios computes Table 3 (hybrid_redis vs multi on
// the sentiment workflow).
func BenchmarkTable3SentimentRatios(b *testing.B) {
	pair := harness.Table3Pairs[0]
	runPanels(b, harness.Fig12(benchScale())[:1], &pair)
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationTermination sweeps the retry budget of the dynamic
// termination protocol: too small risks premature exits (caught by output
// checks), larger budgets pay tail latency.
func BenchmarkAblationTermination(b *testing.B) {
	for _, retries := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("retries=%d", retries), func(b *testing.B) {
			m, err := mapping.Get("dyn_multi")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := galaxy.New(galaxy.Config{Galaxies: 20})
				rep, err := m.Execute(g, mapping.Options{
					Processes: 8, Platform: platform.Server, Seed: 1, Retries: retries,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Outputs != 20 {
					b.Fatalf("premature termination: %d outputs", rep.Outputs)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
			}
		})
	}
}

// BenchmarkAblationThreshold sweeps the auto-scaler's initial active size
// (Algorithm 1's active_size default of max/2 vs extremes).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, initial := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("initial=%d", initial), func(b *testing.B) {
			m, err := mapping.Get("dyn_auto_multi")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := galaxy.New(galaxy.Config{Galaxies: 40})
				rep, err := m.Execute(g, mapping.Options{
					Processes: 16, Platform: platform.Server, Seed: 1,
					AutoScale: &autoscale.Config{MaxPoolSize: 16, InitialActive: initial},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
				b.ReportMetric(rep.ProcessTime.Seconds(), "proctime-s")
			}
		})
	}
}

// BenchmarkAblationHybridVsMulti contrasts the two stateful-capable
// mappings head to head at the paper's shared sweep point.
func BenchmarkAblationHybridVsMulti(b *testing.B) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, tech := range []string{"multi", "hybrid_redis"} {
		b.Run(tech, func(b *testing.B) {
			m, err := mapping.Get(tech)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := sentiment.New(sentiment.Config{Articles: 40})
				rep, err := m.Execute(g, mapping.Options{
					Processes: sentiment.MinMultiProcesses, Platform: platform.Server,
					Seed: 1, RedisAddr: srv.Addr(),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
			}
		})
	}
}

// BenchmarkAblationStaging measures the static staging fusion on the
// seismic chain: fusing the linear transform stages removes seven queue
// hops per data unit under dynamic scheduling.
func BenchmarkAblationStaging(b *testing.B) {
	s := benchScale()
	for _, fused := range []bool{false, true} {
		name := "unfused"
		if fused {
			name = "staged"
		}
		b.Run(name, func(b *testing.B) {
			m, err := mapping.Get("dyn_multi")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := harnessSeismic(s)
				if fused {
					g, err = statics.Staging(g)
					if err != nil {
						b.Fatal(err)
					}
				}
				rep, err := m.Execute(g, mapping.Options{Processes: 8, Platform: platform.Server, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
				b.ReportMetric(float64(rep.Tasks), "tasks")
			}
		})
	}
}

// BenchmarkAblationStrategy contrasts the paper's naive ±1 queue-size
// strategy with the refined proportional strategy (the future-work item),
// on a bursty workload where ±1 inertia costs runtime.
func BenchmarkAblationStrategy(b *testing.B) {
	strategies := map[string]autoscale.Strategy{
		"naive":        nil, // mapping default: ±1 queue-size
		"proportional": &autoscale.ProportionalQueueStrategy{TargetPerWorker: 2},
	}
	for name, strategy := range strategies {
		b.Run(name, func(b *testing.B) {
			m, err := mapping.Get("dyn_auto_multi")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := galaxy.New(galaxy.Config{Galaxies: 60})
				rep, err := m.Execute(g, mapping.Options{
					Processes: 16, Platform: platform.Server, Seed: 1, Strategy: strategy,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
				b.ReportMetric(rep.ProcessTime.Seconds(), "proctime-s")
			}
		})
	}
}

// BenchmarkAblationHybridAutoScaling measures the future-work extension:
// hybrid_redis with and without auto-scaling of its stateless pool.
func BenchmarkAblationHybridAutoScaling(b *testing.B) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, tech := range []string{"hybrid_redis", "hybrid_auto_redis"} {
		b.Run(tech, func(b *testing.B) {
			m, err := mapping.Get(tech)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := sentiment.New(sentiment.Config{Articles: 40})
				rep, err := m.Execute(g, mapping.Options{
					Processes: 14, Platform: platform.Server, Seed: 1, RedisAddr: srv.Addr(),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
				b.ReportMetric(rep.ProcessTime.Seconds(), "proctime-s")
			}
		})
	}
}

// BenchmarkAblationRedisCost sweeps the embedded server's per-command
// service delay, quantifying how Redis weight drives the multi/Redis gap
// the paper attributes to Redis being "more resource-intensive".
func BenchmarkAblationRedisCost(b *testing.B) {
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond} {
		b.Run(fmt.Sprintf("opdelay=%s", delay), func(b *testing.B) {
			srv := miniredis.NewServer(miniredis.Options{OpDelay: delay})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			m, err := mapping.Get("dyn_redis")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g := galaxy.New(galaxy.Config{Galaxies: 20})
				rep, err := m.Execute(g, mapping.Options{
					Processes: 8, Platform: platform.Server, Seed: 1, RedisAddr: srv.Addr(),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
			}
		})
	}
}

// BenchmarkTelemetryOverhead measures the cost of the live telemetry plane
// on the batched dyn_redis path — the hottest configuration (pull batches,
// pipelined acks, Redis round trips). The contract is that "on" stays
// within a few percent of "off": the hot path only pays atomic
// increments and a pair of clock reads per batch, never a lock. The "diag"
// variant adds the bottleneck-attribution layer (per-PE flow ledger, service
// histograms, per-edge byte counters) on top — its budget is the same ~5%,
// since the per-task additions are two clock reads and a handful of atomics
// against cached ledger rows.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry, diag *diagnosis.Diag) {
		srv := miniredis.NewServer(miniredis.Options{})
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		m, err := mapping.Get("dyn_redis")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			g := galaxy.New(galaxy.Config{Galaxies: 20})
			rep, err := m.Execute(g, mapping.Options{
				Processes: 8, Platform: platform.Server, Seed: 1,
				RedisAddr: srv.Addr(), Telemetry: reg, Diagnosis: diag,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Runtime.Seconds(), "runtime-s")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, nil) })
	b.Run("on", func(b *testing.B) {
		reg := telemetry.New(telemetry.Config{})
		run(b, reg, nil)
		if snap := reg.Snapshot(); snap.Workers.Pull.Count == 0 {
			b.Fatal("telemetry-on run recorded no pulls")
		}
	})
	b.Run("diag", func(b *testing.B) {
		reg := telemetry.New(telemetry.Config{})
		diag := diagnosis.New(diagnosis.Config{})
		run(b, reg, diag)
		flow := diag.Flow.Snapshot()
		if len(flow.PEs) == 0 {
			b.Fatal("diagnosis-on run recorded no flow rows")
		}
	})
}

// harnessSeismic builds the quick-scale seismic graph via the catalog.
func harnessSeismic(s harness.Scale) *graph.Graph {
	return harness.Fig11(s)[0].MakeGraph()
}

// benchKeyed is the payload of the state-subsystem benchmark workload.
type benchKeyed struct {
	Key string
	Val int64
}

func init() { codec.Register(benchKeyed{}) }

// benchFieldCount is the legacy model: per-instance totals in PE fields.
type benchFieldCount struct {
	core.Base
	totals map[string]int64
}

func (p *benchFieldCount) Process(ctx *core.Context, port string, v any) error {
	it := v.(benchKeyed)
	p.totals[it.Key] += it.Val
	return nil
}

func (p *benchFieldCount) Final(ctx *core.Context) error {
	for k, v := range p.totals {
		if err := ctx.EmitDefault(fmt.Sprintf("%s=%d", k, v)); err != nil {
			return err
		}
	}
	return nil
}

// benchManagedCount is the same aggregation on the managed state subsystem.
type benchManagedCount struct {
	core.Base
}

func (p *benchManagedCount) Process(ctx *core.Context, port string, v any) error {
	it := v.(benchKeyed)
	_, err := ctx.State().AddInt(it.Key, it.Val)
	return err
}

func (p *benchManagedCount) Final(ctx *core.Context) error {
	entries, err := state.SortedEntries(ctx.State())
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.EmitDefault(e.Key + "=" + e.Value); err != nil {
			return err
		}
	}
	return nil
}

// benchKeyedGraph builds gen → count ×3 (group-by key) → sink.
func benchKeyedGraph(items int, managed bool) *graph.Graph {
	g := graph.New("benchstate")
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < items; i++ {
				if err := ctx.EmitDefault(benchKeyed{Key: keys[i%len(keys)], Val: int64(i)}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if managed {
		g.Add(func() core.PE {
			return &benchManagedCount{Base: core.NewBase("count", core.In(), core.Out())}
		}).SetInstances(3).SetKeyedState()
	} else {
		g.Add(func() core.PE {
			return &benchFieldCount{Base: core.NewBase("count", core.In(), core.Out()), totals: map[string]int64{}}
		}).SetInstances(3).SetStateful(true)
	}
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error { return nil })
	})
	g.Pipe("gen", "count").SetGrouping(graph.GroupByKey(func(v any) string { return v.(benchKeyed).Key }))
	g.Pipe("count", "sink")
	return g
}

// BenchmarkStateFieldVsManaged compares the cost structures of the three
// state models on one keyed aggregation workload: legacy field state,
// managed state on the lock-sharded memory backend, and managed state on the
// Redis backend — first under the static multi mapping (where field state is
// the baseline), then managed state under the dynamic mappings field state
// cannot use at all.
func BenchmarkStateFieldVsManaged(b *testing.B) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const items = 400

	run := func(b *testing.B, mappingName string, g *graph.Graph, opts mapping.Options) {
		b.Helper()
		m, err := mapping.Get(mappingName)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := m.Execute(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if ops := rep.State.Total(); ops > 0 {
			// One benchmark op is one Execute, so the per-run total is
			// already the per-op figure.
			b.ReportMetric(float64(ops), "state-ops/op")
		}
	}
	baseOpts := func() mapping.Options {
		return mapping.Options{Processes: 5, Platform: platform.Server, Seed: 3}
	}

	b.Run("field/multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "multi", benchKeyedGraph(items, false), baseOpts())
		}
	})
	b.Run("managed-memory/multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "multi", benchKeyedGraph(items, true), baseOpts())
		}
	})
	b.Run("managed-redis/multi", func(b *testing.B) {
		// Backend pluggability: an in-process mapping with external Redis
		// state (the resume-capable configuration).
		backend := state.DialRedisBackend(srv.Addr(), "bench")
		defer backend.Close()
		for i := 0; i < b.N; i++ {
			opts := baseOpts()
			opts.StateBackend = backend
			run(b, "multi", benchKeyedGraph(items, true), opts)
		}
	})
	b.Run("managed-memory/dyn_multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "dyn_multi", benchKeyedGraph(items, true), baseOpts())
		}
	})
	b.Run("managed-redis/dyn_redis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := baseOpts()
			opts.RedisAddr = srv.Addr()
			run(b, "dyn_redis", benchKeyedGraph(items, true), opts)
		}
	})
	b.Run("managed-redis/hybrid_redis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := baseOpts()
			opts.RedisAddr = srv.Addr()
			run(b, "hybrid_redis", benchKeyedGraph(items, true), opts)
		}
	})
}
