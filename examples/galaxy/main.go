// Galaxy example: the Internal Extinction of Galaxies workflow (the paper's
// Figure 8 scenario, shrunk) swept across all six techniques on the
// simulated 16-core server. It prints a runtime/process-time mini-table and
// demonstrates the paper's headline auto-scaling trade-off: similar runtime
// at visibly lower total process time.
package main

import (
	"fmt"
	"log"
	"strings"

	_ "repro/internal/dynamic"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/miniredis"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/workflows/galaxy"
)

func main() {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	techniques := []string{"multi", "dyn_multi", "dyn_auto_multi", "dyn_redis", "dyn_auto_redis", "hybrid_redis"}
	var series []metrics.Series

	for _, tech := range techniques {
		m, err := mapping.Get(tech)
		if err != nil {
			log.Fatal(err)
		}
		s := metrics.Series{Label: tech}
		for _, procs := range []int{4, 8, 16} {
			opts := mapping.Options{Processes: procs, Platform: platform.Server, Seed: 42}
			if strings.Contains(tech, "redis") {
				opts.RedisAddr = srv.Addr()
			}
			g := galaxy.New(galaxy.Config{Galaxies: 60})
			rep, err := m.Execute(g, opts)
			if err != nil {
				log.Fatalf("%s procs=%d: %v", tech, procs, err)
			}
			s.Points = append(s.Points, rep)
		}
		series = append(series, s)
	}

	fmt.Println(metrics.RenderSeries("Internal Extinction of Galaxies (60 galaxies, server)", series))

	// Auto-scaling headline: compare the full-pool dynamic mapping with its
	// auto-scaled variant at the widest sweep point.
	var dyn, auto metrics.Report
	for _, s := range series {
		if p, ok := s.At(16); ok {
			switch s.Label {
			case "dyn_multi":
				dyn = p
			case "dyn_auto_multi":
				auto = p
			}
		}
	}
	if dyn.ProcessTime > 0 {
		fmt.Printf("auto-scaling at 16 processes: runtime ratio %.2f, process time ratio %.2f\n",
			auto.Runtime.Seconds()/dyn.Runtime.Seconds(),
			auto.ProcessTime.Seconds()/dyn.ProcessTime.Seconds())
	}
}
