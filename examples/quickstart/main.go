// Quickstart: compose a small stream workflow out of PEs, then run the same
// abstract graph under three different mappings — sequential, static
// multiprocessing, and dynamic scheduling with auto-scaling — without
// touching the PE code. This is the core dispel4py promise the library
// reproduces.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"repro/internal/core"
	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
)

func main() {
	lines := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick thinking wins the day",
	}

	// Thread-safe word counter shared by the sink PE instances.
	var mu sync.Mutex
	counts := map[string]int{}

	buildGraph := func() *graph.Graph {
		g := graph.New("wordcount")
		g.Add(func() core.PE {
			return core.NewSource("readLines", func(ctx *core.Context) error {
				for _, line := range lines {
					if err := ctx.EmitDefault(line); err != nil {
						return err
					}
				}
				return nil
			})
		})
		g.Add(func() core.PE {
			return core.NewEach("splitWords", func(ctx *core.Context, v any) error {
				for _, w := range strings.Fields(v.(string)) {
					if err := ctx.EmitDefault(w); err != nil {
						return err
					}
				}
				return nil
			})
		})
		g.Add(func() core.PE {
			return core.NewSink("countWords", func(ctx *core.Context, v any) error {
				mu.Lock()
				counts[v.(string)]++
				mu.Unlock()
				return nil
			})
		})
		g.Pipe("readLines", "splitWords")
		g.Pipe("splitWords", "countWords")
		return g
	}

	for _, name := range []string{"simple", "multi", "dyn_auto_multi"} {
		mu.Lock()
		counts = map[string]int{}
		mu.Unlock()

		m, err := mapping.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Execute(buildGraph(), mapping.Options{
			Processes: 4,
			Platform:  platform.Server,
			Seed:      1,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		mu.Lock()
		the, fox := counts["the"], counts["fox"]
		mu.Unlock()
		fmt.Printf("%-15s runtime=%-10s tasks=%-4d words: the=%d fox=%d\n",
			name, rep.Runtime.Round(1e6), rep.Tasks, the, fox)
	}
}
