// Seismic example: phase 1 of the Seismic Cross-Correlation workflow under
// dyn_auto_multi with the auto-scaler trace enabled (the paper's Figure 13
// analysis), followed by the stateful phase 2 (cross-correlation under
// groupings) on the hybrid Redis mapping.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/autoscale"
	_ "repro/internal/dynamic"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/workflows/seismic"
)

func main() {
	outDir, err := os.MkdirTemp("", "seismic-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(outDir)

	// Phase 1: stateless pipeline with auto-scaling and trace recording.
	trace := &autoscale.Trace{}
	g := seismic.New(seismic.Config{Stations: 30, Samples: 1500, OutDir: outDir})
	m, err := mapping.Get("dyn_auto_multi")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.Execute(g, mapping.Options{
		Processes: 12,
		Platform:  platform.Server,
		Seed:      3,
		Trace:     trace,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	files, _ := os.ReadDir(outDir)
	fmt.Printf("phase 1 wrote %d trace files to disk\n", len(files))

	pts := trace.Points()
	fmt.Printf("auto-scaler made %d observations; sample (iteration, active, queue size):\n", len(pts))
	step := 1
	if len(pts) > 8 {
		step = len(pts) / 8
	}
	for i := 0; i < len(pts); i += step {
		fmt.Printf("  %4d  active=%-3d queue=%.0f\n", pts[i].Iteration, pts[i].Active, pts[i].Metric)
	}

	// Phase 2: the grouped, stateful cross-correlation on hybrid_redis.
	srv, err := miniredis.StartTestServer()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	g2 := seismic.NewPhase2(seismic.Config{Stations: 30, Samples: 800}, 3, func(top []seismic.PairPayload) {
		fmt.Println("phase 2 best-correlated station pairs:")
		for i, p := range top {
			fmt.Printf("  %d. %s × %s  peak=%.3f\n", i+1, p.A, p.B, p.Peak)
		}
	})
	hm, err := mapping.Get("hybrid_redis")
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := hm.Execute(g2, mapping.Options{
		Processes: 8,
		Platform:  platform.Server,
		Seed:      3,
		RedisAddr: srv.Addr(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep2)
}
