// Staging example: the prior-work *static* optimizations the paper builds
// on. It measures an execution profile of the seismic phase-1 chain, shows
// what naive assignment fuses from that profile, applies staging (fuse all
// no-shuffle chains), and compares dynamic-scheduling runs of the original
// and staged graphs — the staged one ships each data unit through one queue
// hop instead of eight.
package main

import (
	"fmt"
	"log"

	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/statics"
	"repro/internal/workflows/seismic"
)

func main() {
	mk := func() *graph.Graph { return seismic.New(seismic.Config{Stations: 25, Samples: 1200}) }

	// 1. Profile the workflow (the "execution log" of naive assignment).
	profile, err := statics.MeasureProfile(mk(), statics.DefaultCommModel(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured per-unit execution times:")
	for _, n := range mk().Nodes() {
		fmt.Printf("  %-14s %v\n", n.Name, profile.Exec[n.Name])
	}

	// 2. Naive assignment: fuse edges where shipping costs more than
	// computing.
	naive, err := statics.NaiveAssignment(mk(), profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive assignment: %d PEs → %d nodes\n", len(mk().Nodes()), len(naive.Nodes()))
	for _, n := range naive.Nodes() {
		fmt.Printf("  %s\n", n.Name)
	}

	// 3. Staging: fuse every linear no-shuffle chain.
	staged, err := statics.Staging(mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstaging: %d PEs → %d nodes\n", len(mk().Nodes()), len(staged.Nodes()))

	// 4. Run both under dynamic scheduling and compare.
	m, err := mapping.Get("dyn_multi")
	if err != nil {
		log.Fatal(err)
	}
	opts := mapping.Options{Processes: 8, Platform: platform.Server, Seed: 5}
	orig, err := m.Execute(mk(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fused, err := m.Execute(staged, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal: %s\nstaged:   %s\n", orig, fused)
	fmt.Printf("staged graph moved %d tasks through the queue instead of %d\n", fused.Tasks, orig.Tasks)
}
