// Sentiment example: the stateful Sentiment Analyses for News Articles
// workflow (the paper's Figure 12 scenario), rewritten on the managed
// keyed-state subsystem (internal/state). The per-state totals and the
// top-3 ranking live in engine-managed stores instead of PE fields, so the
// same abstract graph — group-by and global groupings included — runs under
// the static multi baseline, the hybrid Redis mapping, *and* plain dynamic
// scheduling (dyn_auto_redis), which rejects the field-state version. The
// run reports include the state-store traffic of each mapping.
package main

import (
	"fmt"
	"log"
	"sync"

	_ "repro/internal/dynamic"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/workflows/sentiment"
)

func main() {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	run := func(mappingName string, procs int) (top []sentiment.StateScore, runtime float64) {
		var mu sync.Mutex
		g := sentiment.New(sentiment.Config{
			Articles:     100,
			ManagedState: true,
			OnTop3: func(s []sentiment.StateScore) {
				mu.Lock()
				top = append([]sentiment.StateScore(nil), s...)
				mu.Unlock()
			},
		})
		m, err := mapping.Get(mappingName)
		if err != nil {
			log.Fatal(err)
		}
		opts := mapping.Options{Processes: procs, Platform: platform.Server, Seed: 7, RedisAddr: srv.Addr()}
		rep, err := m.Execute(g, opts)
		if err != nil {
			log.Fatalf("%s: %v", mappingName, err)
		}
		fmt.Println(rep)
		return top, rep.Runtime.Seconds()
	}

	fmt.Printf("multi needs at least %d processes for this workflow; the Redis mappings run from %d\n",
		sentiment.MinMultiProcesses, 7+1)

	multiTop, multiRt := run("multi", sentiment.MinMultiProcesses)
	hybridTop, hybridRt := run("hybrid_redis", sentiment.MinMultiProcesses)
	// Managed state is what makes this run legal: with field state the
	// dynamic mappings reject stateful workflows outright.
	dynTop, _ := run("dyn_auto_redis", 8)

	show := func(label string, top []sentiment.StateScore) {
		fmt.Printf("top 3 happiest states (%s):\n", label)
		for i, s := range top {
			fmt.Printf("  %d. %-15s %.2f\n", i+1, s.State, s.Score)
		}
	}
	show("multi", multiTop)
	show("hybrid_redis", hybridTop)
	show("dyn_auto_redis", dynTop)
	fmt.Printf("\nhybrid_redis/multi runtime ratio: %.2f\n", hybridRt/multiRt)
	fmt.Println("(both runs use managed state here, so the ratio is not directly comparable to the")
	fmt.Println(" paper's field-state 0.32 best-case; see BenchmarkAblationHybridVsMulti for that)")
}
