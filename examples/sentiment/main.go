// Sentiment example: the stateful Sentiment Analyses for News Articles
// workflow (the paper's Figure 12 scenario). It runs the same abstract
// graph — group-by and global groupings included — under the static multi
// baseline and the hybrid Redis mapping, prints both reports and the top-3
// happiest states, and shows the hybrid_redis speed-up the paper reports.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/workflows/sentiment"
)

func main() {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	run := func(mappingName string, procs int) (top []sentiment.StateScore, runtime float64) {
		var mu sync.Mutex
		g := sentiment.New(sentiment.Config{
			Articles: 100,
			OnTop3: func(s []sentiment.StateScore) {
				mu.Lock()
				top = append([]sentiment.StateScore(nil), s...)
				mu.Unlock()
			},
		})
		m, err := mapping.Get(mappingName)
		if err != nil {
			log.Fatal(err)
		}
		opts := mapping.Options{Processes: procs, Platform: platform.Server, Seed: 7, RedisAddr: srv.Addr()}
		rep, err := m.Execute(g, opts)
		if err != nil {
			log.Fatalf("%s: %v", mappingName, err)
		}
		fmt.Println(rep)
		return top, rep.Runtime.Seconds()
	}

	fmt.Printf("multi needs at least %d processes for this workflow; hybrid_redis runs from %d\n",
		sentiment.MinMultiProcesses, 7+1)

	multiTop, multiRt := run("multi", sentiment.MinMultiProcesses)
	hybridTop, hybridRt := run("hybrid_redis", sentiment.MinMultiProcesses)

	fmt.Println("\ntop 3 happiest states (multi):")
	for i, s := range multiTop {
		fmt.Printf("  %d. %-15s %.2f\n", i+1, s.State, s.Score)
	}
	fmt.Println("top 3 happiest states (hybrid_redis):")
	for i, s := range hybridTop {
		fmt.Printf("  %d. %-15s %.2f\n", i+1, s.State, s.Score)
	}
	fmt.Printf("\nhybrid_redis/multi runtime ratio: %.2f (the paper reports 0.32 best-case on its server)\n",
		hybridRt/multiRt)
}
